#include "svc/serve.hpp"

#include <optional>

#include "common/contracts.hpp"
#include "obs/profiler.hpp"

namespace slcube::svc {

const char* to_string(ServeStatus s) {
  switch (s) {
    case ServeStatus::kDeliveredOptimal:
      return "delivered-optimal";
    case ServeStatus::kDeliveredSuboptimal:
      return "delivered-suboptimal";
    case ServeStatus::kRefused:
      return "source-refused";
    case ServeStatus::kStuck:
      return "stuck";
    case ServeStatus::kDroppedSource:
      return "dropped-source";
    case ServeStatus::kDroppedNode:
      return "dropped-node";
    case ServeStatus::kDroppedLink:
      return "dropped-link";
  }
  return "unknown";
}

namespace {

/// Why the live network blocked a traversal the decision table allowed,
/// or nullopt when the hop lands. Checked against ground truth only —
/// the decision snapshot already vouched for the hop.
std::optional<ServeStatus> traversal_block(const Snapshot& ground,
                                           NodeId from, Dim dim, NodeId to) {
  if (ground.links.is_faulty(from, dim)) return ServeStatus::kDroppedLink;
  if (ground.faults.is_faulty(to)) return ServeStatus::kDroppedNode;
  return std::nullopt;
}

/// Lazy trace emission, same discipline as route_unicast_egs: the source
/// event waits for the first hop so the chosen dimension is known, and
/// every terminal path emits it first if nothing did yet. Drops speak
/// the sim dialect — a send/drop pair for the fatal hop plus a "lost"
/// route_done over the hops that actually landed — which is exactly the
/// in-flight-death shape obs::AuditSink accepts.
struct Emitter {
  obs::TraceSink* trace = nullptr;
  const core::SourceDecision* dec = nullptr;
  core::Level self_level = 0;
  NodeId s = 0;
  NodeId d = 0;
  bool source_emitted = false;

  void source(int chosen_dim, unsigned ties, bool spare) {
    if (trace == nullptr || source_emitted) return;
    source_emitted = true;
    obs::SourceDecisionEvent ev;
    ev.source = s;
    ev.dest = d;
    ev.hamming = dec->hamming;
    ev.c1 = dec->c1;
    ev.c2 = dec->c2;
    ev.c3 = dec->c3;
    ev.chosen_dim = chosen_dim;
    ev.ties = ties;
    ev.spare = spare;
    ev.egs = true;
    ev.self_level = self_level;
    ev.dest_link_faulty = dec->dest_link_faulty;
    trace->on_event(ev);
  }

  void hop(NodeId from, NodeId to, Dim dim, core::Level level,
           std::uint32_t nav_before, std::uint32_t nav_after, bool preferred,
           unsigned ties) {
    if (trace == nullptr) return;
    obs::HopEvent ev;
    ev.from = from;
    ev.to = to;
    ev.dim = dim;
    ev.level = level;
    ev.nav_before = nav_before;
    ev.nav_after = nav_after;
    ev.preferred = preferred;
    ev.ties = ties;
    trace->on_event(ev);
  }

  void dropped_in_flight(NodeId from, NodeId to, ServeStatus why,
                         std::uint64_t epoch) {
    if (trace == nullptr) return;
    obs::MessageSendEvent send;
    send.time = epoch;
    send.from = from;
    send.to = to;
    send.kind = obs::MsgKind::kUnicast;
    trace->on_event(send);
    obs::MessageDropEvent drop;
    drop.time = epoch;
    drop.from = from;
    drop.to = to;
    drop.kind = obs::MsgKind::kUnicast;
    drop.reason =
        why == ServeStatus::kDroppedLink ? "faulty-link" : "dead-node";
    trace->on_event(drop);
  }

  void done(const char* status, unsigned hops) {
    if (trace == nullptr) return;
    obs::RouteDoneEvent ev;
    ev.source = s;
    ev.dest = d;
    ev.status = status;
    ev.hops = hops;
    trace->on_event(ev);
  }
};

/// The walker. `ground_of()` yields the ground-truth snapshot to judge
/// the next traversal against; the live overloads re-acquire per call,
/// the deterministic overload always returns the same one. Decisions
/// come from `decision` only and replicate route_unicast_egs exactly
/// (same choose_spare / choose_preferred / footnote-3 final-hop logic,
/// default lowest-dim tie-break), so with ground == decision the result
/// is bit-identical to the core router.
template <typename GroundFn>
ServeResult serve_impl(const topo::Hypercube& cube, const Snapshot& decision,
                       GroundFn&& ground_of, NodeId s, NodeId d,
                       const ServeOptions& options) {
  const obs::StageScope stage("svc.serve");
  SLC_EXPECT_MSG(decision.faults.is_healthy(s),
                 "serve source must be healthy in the decision snapshot");
  SLC_EXPECT_MSG(decision.faults.is_healthy(d),
                 "serve destination must be healthy in the decision snapshot");

  const core::UnicastOptions uopt{};  // lowest-dim ties: deterministic
  obs::TraceSink* const trace = options.trace;
  const core::EgsViews views = decision.views();

  ServeResult result;
  result.decision = core::decide_at_source_egs(cube, decision.links, views,
                                               s, d);
  result.decision_epoch = decision.epoch;
  result.path.push_back(s);

  Emitter emit{trace, &result.decision, views.self_view[s], s, d};

  // Launch check: a source that died after the decision epoch was
  // published sends nothing — not even a refusal.
  {
    const Snapshot& ground = ground_of();
    result.ground_epoch = ground.epoch;
    if (ground.faults.is_faulty(s)) {
      result.status = ServeStatus::kDroppedSource;
      emit.source(-1, 0, false);
      emit.done("lost", 0);
      return result;
    }
  }

  std::uint32_t nav = cube.navigation_vector(s, d);
  if (nav == 0) {
    result.status = ServeStatus::kDeliveredOptimal;
    emit.source(-1, 0, false);
    emit.done("delivered-optimal", 0);
    return result;
  }

  NodeId cur = s;
  bool suboptimal = false;

  // Shared drop epilogue: the fatal hop emitted no HopEvent (it never
  // landed), so reported hops == landed hops == path length - 1.
  const auto drop_at = [&](ServeStatus why, NodeId from, NodeId to) {
    result.status = why;
    emit.source(-1, 0, false);  // no-op when a hop already emitted it
    emit.dropped_in_flight(from, to, why, result.ground_epoch);
    emit.done("lost", result.hops());
  };

  if (!result.decision.optimal_feasible()) {
    if (!result.decision.c3) {
      result.status = ServeStatus::kRefused;
      emit.source(-1, 0, false);
      emit.done("source-refused", 0);
      return result;
    }
    unsigned ties = 0;
    const auto spare =
        core::choose_spare(cube, views.public_view, cur, nav, uopt,
                           trace != nullptr ? &ties : nullptr);
    SLC_ASSERT_MSG(spare.has_value(), "C3 held but no spare qualified");
    SLC_ASSERT(!decision.links.is_faulty(cur, *spare));
    const NodeId detour = cube.neighbor(cur, *spare);
    emit.source(static_cast<int>(*spare), ties, true);
    const Snapshot& ground = ground_of();
    result.ground_epoch = ground.epoch;
    if (const auto blocked = traversal_block(ground, cur, *spare, detour)) {
      drop_at(*blocked, cur, detour);
      return result;
    }
    emit.hop(cur, detour, *spare, views.public_view[detour], nav,
             nav | bits::unit(*spare), false, ties);
    cur = detour;
    nav |= bits::unit(*spare);
    result.path.push_back(cur);
    suboptimal = true;
  }

  while (nav != 0) {
    Dim dim;
    unsigned ties = 1;
    const bool final_hop = bits::popcount(nav) == 1;
    if (final_hop) {
      // Footnote 3: the last preferred neighbor IS the destination; the
      // decision table delivers across the link iff it believes the link
      // is healthy, even when the destination is an N2 node it otherwise
      // treats as faulty.
      dim = bits::lowest_set(nav);
      if (decision.links.is_faulty(cur, dim)) {
        result.status = ServeStatus::kStuck;
        emit.source(-1, 0, false);
        emit.done("stuck", result.hops());
        return result;
      }
    } else {
      const auto next =
          core::choose_preferred(cube, views.public_view, cur, nav, uopt,
                                 trace != nullptr ? &ties : nullptr);
      if (!next || decision.links.is_faulty(cur, *next)) {
        result.status = ServeStatus::kStuck;
        emit.source(-1, 0, false);
        emit.done("stuck", result.hops());
        return result;
      }
      dim = *next;
    }
    const NodeId to = cube.neighbor(cur, dim);
    emit.source(static_cast<int>(dim), ties, false);
    const Snapshot& ground = ground_of();
    result.ground_epoch = ground.epoch;
    if (const auto blocked = traversal_block(ground, cur, dim, to)) {
      drop_at(*blocked, cur, to);
      return result;
    }
    emit.hop(cur, to, dim, views.public_view[to], nav,
             nav & ~bits::unit(dim), true, ties);
    cur = to;
    nav &= ~bits::unit(dim);
    result.path.push_back(cur);
  }

  SLC_ASSERT(cur == d);
  result.status = suboptimal ? ServeStatus::kDeliveredSuboptimal
                             : ServeStatus::kDeliveredOptimal;
  emit.done(to_string(result.status), result.hops());
  return result;
}

}  // namespace

ServeResult serve_route(const Snapshot& decision, const Snapshot& ground,
                        NodeId s, NodeId d, const ServeOptions& options) {
  SLC_EXPECT_MSG(decision.links.cube().num_nodes() ==
                     ground.links.cube().num_nodes(),
                 "decision and ground snapshots must share a cube");
  const topo::Hypercube& cube = decision.links.cube();
  return serve_impl(
      cube, decision, [&]() -> const Snapshot& { return ground; }, s, d,
      options);
}

ServeResult serve_route(const SnapshotOracle& oracle,
                        const SnapshotPtr& decision, NodeId s, NodeId d,
                        const ServeOptions& options) {
  SLC_EXPECT_MSG(decision != nullptr, "serve needs a decision snapshot");
  // `hold` keeps each re-acquired ground epoch alive across its check;
  // the previous epoch may be freed as soon as the next one replaces it.
  SnapshotPtr hold;
  return serve_impl(
      oracle.cube(), *decision,
      [&]() -> const Snapshot& {
        hold = oracle.acquire();
        return *hold;
      },
      s, d, options);
}

ServeResult serve_route(const SnapshotOracle& oracle, NodeId s, NodeId d,
                        const ServeOptions& options) {
  return serve_route(oracle, oracle.acquire(), s, d, options);
}

}  // namespace slcube::svc
