#include "svc/snapshot_oracle.hpp"

#include "common/contracts.hpp"
#include "obs/profiler.hpp"

namespace slcube::svc {

const char* to_string(ChurnRecord::Kind k) {
  switch (k) {
    case ChurnRecord::Kind::kNodeFail:
      return "node-fail";
    case ChurnRecord::Kind::kNodeRecover:
      return "node-recover";
    case ChurnRecord::Kind::kLinkFail:
      return "link-fail";
    case ChurnRecord::Kind::kLinkRecover:
      return "link-recover";
    case ChurnRecord::Kind::kRetarget:
      return "retarget";
  }
  SLC_UNREACHABLE("bad ChurnRecord::Kind");
}

SnapshotOracle::SnapshotOracle(const topo::Hypercube& cube) : oracle_(cube) {
  publish();
  stats_ = {};  // epoch 0 is construction, not a churn event
}

SnapshotOracle::SnapshotOracle(const topo::Hypercube& cube,
                               const fault::FaultSet& faults,
                               const fault::LinkFaultSet& link_faults)
    : oracle_(cube, faults, link_faults) {
  publish();
  stats_ = {};
}

void SnapshotOracle::publish() {
  const obs::StageScope stage("svc.publish");
  // next_epoch_ is writer-private; construction publishes epoch 0.
  const std::uint64_t epoch = next_epoch_++;
  const std::uint64_t parent = epoch == 0 ? 0 : epoch - 1;
  auto snap = std::make_shared<const Snapshot>(
      Snapshot{epoch, parent, std::move(pending_), oracle_.faults(),
               oracle_.links(), oracle_.public_view(), oracle_.self_view()});
  pending_.clear();  // moved-from; make the empty state explicit
  // Publication order: snapshot pointer first, then the epoch probe.
  // A reader that observes epoch() == e is therefore guaranteed that
  // acquire() returns a snapshot with epoch >= e.
  current_.store(snap, std::memory_order_release);
  epoch_.store(epoch, std::memory_order_release);
  ++stats_.epochs_published;
  if (trace_ != nullptr) trace_->on_event(make_epoch_event(*snap));
}

obs::EpochPublishEvent make_epoch_event(const Snapshot& snap) {
  obs::EpochPublishEvent ev;
  ev.epoch = snap.epoch;
  ev.parent = snap.parent_epoch;
  ev.churn = snap.lineage.size();
  ev.faults = snap.faults.count();
  ev.links = snap.links.count();
  ev.ts = snap.epoch;
  if (snap.lineage.empty()) {
    ev.cause = "init";
  } else if (snap.lineage.size() > 1) {
    ev.cause = "batch";
  } else {
    const ChurnRecord& rec = snap.lineage.front();
    ev.cause = to_string(rec.kind);
    if (rec.kind != ChurnRecord::Kind::kRetarget) {
      ev.node = static_cast<std::int64_t>(rec.node);
      if (rec.kind == ChurnRecord::Kind::kLinkFail ||
          rec.kind == ChurnRecord::Kind::kLinkRecover) {
        ev.dim = static_cast<int>(rec.dim);
      }
    }
  }
  return ev;
}

void SnapshotOracle::add_fault(NodeId a) {
  oracle_.add_fault(a);
  pending_.push_back({ChurnRecord::Kind::kNodeFail, a, 0});
  publish();
}

void SnapshotOracle::remove_fault(NodeId a) {
  oracle_.remove_fault(a);
  pending_.push_back({ChurnRecord::Kind::kNodeRecover, a, 0});
  publish();
}

void SnapshotOracle::fail_link(NodeId a, Dim d) {
  oracle_.fail_link(a, d);
  pending_.push_back({ChurnRecord::Kind::kLinkFail, a, d});
  publish();
}

void SnapshotOracle::recover_link(NodeId a, Dim d) {
  oracle_.recover_link(a, d);
  pending_.push_back({ChurnRecord::Kind::kLinkRecover, a, d});
  publish();
}

void SnapshotOracle::apply(
    std::span<const NodeId> node_toggles,
    std::span<const core::EgsOracle::LinkToggle> link_toggles) {
  // A toggle flips membership: record the direction it landed on.
  for (const NodeId node : node_toggles) {
    const bool fails_now = !oracle_.faults().is_faulty(node);
    pending_.push_back({fails_now ? ChurnRecord::Kind::kNodeFail
                                  : ChurnRecord::Kind::kNodeRecover,
                        node, 0});
  }
  for (const auto& [node, dim] : link_toggles) {
    const bool fails_now = !oracle_.links().is_faulty(node, dim);
    pending_.push_back({fails_now ? ChurnRecord::Kind::kLinkFail
                                  : ChurnRecord::Kind::kLinkRecover,
                        node, dim});
  }
  oracle_.apply(node_toggles, link_toggles);
  publish();
}

void SnapshotOracle::retarget(const fault::FaultSet& target_faults,
                              const fault::LinkFaultSet& target_links) {
  oracle_.retarget(target_faults, target_links);
  pending_.push_back({ChurnRecord::Kind::kRetarget, 0, 0});
  publish();
}

}  // namespace slcube::svc
