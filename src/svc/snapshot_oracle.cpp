#include "svc/snapshot_oracle.hpp"

#include "obs/profiler.hpp"

namespace slcube::svc {

SnapshotOracle::SnapshotOracle(const topo::Hypercube& cube) : oracle_(cube) {
  publish();
  stats_ = {};  // epoch 0 is construction, not a churn event
}

SnapshotOracle::SnapshotOracle(const topo::Hypercube& cube,
                               const fault::FaultSet& faults,
                               const fault::LinkFaultSet& link_faults)
    : oracle_(cube, faults, link_faults) {
  publish();
  stats_ = {};
}

void SnapshotOracle::publish() {
  const obs::StageScope stage("svc.publish");
  // next_epoch_ is writer-private; construction publishes epoch 0.
  auto snap = std::make_shared<const Snapshot>(
      Snapshot{next_epoch_++, oracle_.faults(), oracle_.links(),
               oracle_.public_view(), oracle_.self_view()});
  const std::uint64_t epoch = snap->epoch;
  // Publication order: snapshot pointer first, then the epoch probe.
  // A reader that observes epoch() == e is therefore guaranteed that
  // acquire() returns a snapshot with epoch >= e.
  current_.store(std::move(snap), std::memory_order_release);
  epoch_.store(epoch, std::memory_order_release);
  ++stats_.epochs_published;
}

void SnapshotOracle::add_fault(NodeId a) {
  oracle_.add_fault(a);
  publish();
}

void SnapshotOracle::remove_fault(NodeId a) {
  oracle_.remove_fault(a);
  publish();
}

void SnapshotOracle::fail_link(NodeId a, Dim d) {
  oracle_.fail_link(a, d);
  publish();
}

void SnapshotOracle::recover_link(NodeId a, Dim d) {
  oracle_.recover_link(a, d);
  publish();
}

void SnapshotOracle::apply(
    std::span<const NodeId> node_toggles,
    std::span<const core::EgsOracle::LinkToggle> link_toggles) {
  oracle_.apply(node_toggles, link_toggles);
  publish();
}

void SnapshotOracle::retarget(const fault::FaultSet& target_faults,
                              const fault::LinkFaultSet& target_links) {
  oracle_.retarget(target_faults, target_links);
  publish();
}

}  // namespace slcube::svc
