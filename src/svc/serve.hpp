// svc — the serving path: route one unicast whose *decisions* come from
// an immutable epoch snapshot while its *traversal* is judged against
// the live (possibly newer) epoch.
//
// This is the paper's stale-table story made operational. A message's
// routing decisions (C1/C2/C3 at the source, max-level preferred /
// spare choices at every hop — exactly the Section-3/4.1 algorithm of
// core::route_unicast_egs) are functions of the table the router
// stabilized on, i.e. the snapshot it acquired. Whether a hop actually
// lands is a property of the *current* network: a node or link that
// failed after the snapshot was published kills the message at that hop
// even though the stale table said it was safe. serve_route() separates
// the two roles cleanly:
//
//   decision snapshot — feasibility + every hop choice (never consulted
//     for liveness of the traversal);
//   ground truth      — re-read at the source and before every hop from
//     the latest published epoch; a hop onto a ground-faulty node or
//     across a ground-faulty link drops the message.
//
// When ground == decision (no churn since acquire) the walk reproduces
// core::route_unicast_egs bit-for-bit — same status, same path — which
// test_snapshot_oracle pins. When they differ, the result records how
// far behind the decision epoch was and what the staleness cost:
// delivered anyway, delivered on the H+2 spare detour, or dropped.
#pragma once

#include <cstdint>

#include "analysis/path.hpp"
#include "core/egs.hpp"
#include "obs/trace.hpp"
#include "svc/snapshot_oracle.hpp"

namespace slcube::svc {

enum class ServeStatus : std::uint8_t {
  kDeliveredOptimal,     ///< landed in exactly H hops
  kDeliveredSuboptimal,  ///< landed in exactly H + 2 hops (spare detour)
  kRefused,              ///< C1/C2/C3 all failed on the decision snapshot
  kStuck,                ///< decision-table dead end (impossible when the
                         ///< snapshot is a true fixed point — audited)
  kDroppedSource,        ///< source already dead in the live epoch
  kDroppedNode,          ///< a hop landed on a node faulty in the live epoch
  kDroppedLink,          ///< a hop crossed a link faulty in the live epoch
};

[[nodiscard]] const char* to_string(ServeStatus s);

struct ServeResult {
  ServeStatus status = ServeStatus::kRefused;
  /// Feasibility flags as decided on the decision snapshot.
  core::SourceDecision decision;
  /// Nodes actually visited, source first: complete on delivery, cut at
  /// the last node reached on a drop, {s} on refusal.
  analysis::Path path;
  std::uint64_t decision_epoch = 0;
  /// Highest epoch consulted as ground truth during the walk (epochs are
  /// published in increasing order, so this is simply the last one).
  std::uint64_t ground_epoch = 0;

  [[nodiscard]] bool delivered() const noexcept {
    return status == ServeStatus::kDeliveredOptimal ||
           status == ServeStatus::kDeliveredSuboptimal;
  }
  [[nodiscard]] bool dropped() const noexcept {
    return status == ServeStatus::kDroppedSource ||
           status == ServeStatus::kDroppedNode ||
           status == ServeStatus::kDroppedLink;
  }
  /// The route was decided on an epoch older than the ground truth it
  /// ran against — the measured form of the paper's stale-table regime.
  [[nodiscard]] bool stale() const noexcept {
    return ground_epoch > decision_epoch;
  }
  [[nodiscard]] unsigned hops() const noexcept {
    return static_cast<unsigned>(path.size() - 1);
  }
};

struct ServeOptions {
  /// When non-null, the walk emits the same event chain as
  /// route_unicast_egs (source decision, hops, terminal status) — with
  /// the sim dialect's send/drop/"lost" events on a staleness drop, so
  /// obs::AuditSink checks the serving path with its strictest rules on
  /// intact routes and its in-flight-death rules on dropped ones.
  obs::TraceSink* trace = nullptr;
};

/// Deterministic core: decisions on `decision`, every traversal judged
/// against the fixed `ground`. Both may be the same snapshot (the
/// no-churn case). `s` and `d` must be healthy in `decision` — routes
/// are planned by nodes that believe both endpoints exist.
[[nodiscard]] ServeResult serve_route(const Snapshot& decision,
                                      const Snapshot& ground, NodeId s,
                                      NodeId d,
                                      const ServeOptions& options = {});

/// Live serving: acquires the decision snapshot once, then re-acquires
/// the latest epoch before every hop — a writer publishing mid-route is
/// observed exactly the way a real network observes mid-flight faults.
[[nodiscard]] ServeResult serve_route(const SnapshotOracle& oracle, NodeId s,
                                      NodeId d,
                                      const ServeOptions& options = {});

/// Live serving against a pre-acquired decision snapshot (readers that
/// batch many requests per acquire).
[[nodiscard]] ServeResult serve_route(const SnapshotOracle& oracle,
                                      const SnapshotPtr& decision, NodeId s,
                                      NodeId d,
                                      const ServeOptions& options = {});

}  // namespace slcube::svc
