#include "sim/protocol_gs.hpp"

#include <span>

namespace slcube::sim {

namespace {

/// NODE_STATUS on node a's registers: the level its local view implies.
core::Level local_node_status(const Network& net, NodeId a) {
  const auto sorted = net.sorted_registers(a);
  return core::node_status(
      std::span<const core::Level>(sorted.data(), sorted.size()),
      net.cube().dimension());
}

/// Announce `a`'s current level to every healthy neighbor.
std::uint64_t announce(Network& net, NodeId a) {
  std::uint64_t sent = 0;
  net.cube().for_each_neighbor(a, [&](Dim, NodeId b) {
    if (net.faults().is_healthy(b)) {
      net.send(a, b, LevelUpdate{a, net.level_of(a)});
      ++sent;
    }
  });
  return sent;
}

/// Deliver every pending LevelUpdate into the receivers' registers.
void drain_updates(Network& net) {
  net.run([&](const Scheduled& ev) {
    const auto& update = std::get<LevelUpdate>(ev.envelope.body);
    const Dim d = bits::lowest_set(ev.envelope.to ^ update.from);
    net.set_neighbor_register(ev.envelope.to, d, update.level);
    return true;
  });
}

/// The state-change-driven cascade step (Section 2.2), shared by failure
/// and recovery stabilization: recompute `a` from its registers and, iff
/// its level moved, announce the new value — the message-passing twin of
/// core::SafetyOracle's worklist cascade.
void recompute_and_cascade(Network& net, NodeId a, std::uint64_t& messages) {
  const core::Level updated = local_node_status(net, a);
  if (updated != net.level_of(a)) {
    net.set_level(a, updated);
    messages += announce(net, a);
  }
}

/// Drain the queue, recording each LevelUpdate and cascading at the
/// receiver, until the network quiesces.
void drain_and_cascade(Network& net, std::uint64_t& messages) {
  net.run([&](const Scheduled& ev) {
    const auto& update = std::get<LevelUpdate>(ev.envelope.body);
    const NodeId a = ev.envelope.to;
    const Dim d = bits::lowest_set(a ^ update.from);
    net.set_neighbor_register(a, d, update.level);
    recompute_and_cascade(net, a, messages);
    return true;
  });
}

}  // namespace

namespace {

/// One GsRoundEvent per completed announcement-recompute round.
void emit_round(Network& net, unsigned round, std::uint64_t changed,
                std::uint64_t messages, bool egs, bool periodic = false) {
  if (net.trace() == nullptr) return;
  obs::GsRoundEvent ev;
  ev.round = round;
  ev.changed = changed;
  ev.messages = messages;
  ev.sim_time = net.now();
  ev.egs = egs;
  ev.periodic = periodic;
  net.trace()->on_event(ev);
}

}  // namespace

SyncGsResult run_gs_synchronous(Network& net) {
  SLC_EXPECT_MSG(net.idle(), "network must be idle before synchronous GS");
  SyncGsResult result;
  const auto& cube = net.cube();
  for (;;) {
    // Announcement wave ...
    std::uint64_t round_messages = 0;
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      if (net.faults().is_healthy(a)) round_messages += announce(net, a);
    }
    result.messages += round_messages;
    drain_updates(net);
    // ... then everyone recomputes from the fresh registers.
    std::uint64_t changed = 0;
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      if (net.faults().is_faulty(a)) continue;
      const core::Level updated = local_node_status(net, a);
      if (updated != net.level_of(a)) {
        net.set_level(a, updated);
        ++changed;
      }
    }
    emit_round(net, result.rounds, changed, round_messages, /*egs=*/false);
    if (changed == 0) break;
    ++result.rounds;
  }
  result.finished_at = net.now();
  return result;
}

SyncGsResult run_egs_synchronous(Network& net) {
  SLC_EXPECT_MSG(net.idle(), "network must be idle before synchronous EGS");
  SyncGsResult result;
  const auto& cube = net.cube();
  // N2 nodes self-declare 0 before the first wave.
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (net.in_n2(a)) net.set_level(a, 0);
  }
  for (;;) {
    std::uint64_t round_messages = 0;
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      if (net.faults().is_healthy(a)) round_messages += announce(net, a);
    }
    result.messages += round_messages;
    drain_updates(net);
    std::uint64_t changed = 0;
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      // Only N1 nodes iterate; N2 stays pinned at its declared 0.
      if (net.faults().is_faulty(a) || net.in_n2(a)) continue;
      const core::Level updated = local_node_status(net, a);
      if (updated != net.level_of(a)) {
        net.set_level(a, updated);
        ++changed;
      }
    }
    emit_round(net, result.rounds, changed, round_messages, /*egs=*/true);
    if (changed == 0) break;
    ++result.rounds;
  }
  // The last EGS round: each N2 node runs NODE_STATUS once on its own
  // view. No announcement — the result is the node's private self view.
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (net.in_n2(a)) net.set_level(a, local_node_status(net, a));
  }
  result.finished_at = net.now();
  return result;
}

AsyncGsResult stabilize_after_failures(
    Network& net, const std::vector<NodeId>& newly_failed) {
  SLC_EXPECT_MSG(net.idle(), "network must be idle before failure injection");
  AsyncGsResult result;
  for (const NodeId dead : newly_failed) net.fail_node(dead);

  // Immediate neighbors detect the deaths (assumption 2), recompute, and
  // start the cascade if their own level moved.
  for (const NodeId dead : newly_failed) {
    net.cube().for_each_neighbor(dead, [&](Dim, NodeId b) {
      if (net.faults().is_healthy(b)) {
        recompute_and_cascade(net, b, result.messages);
      }
    });
  }

  drain_and_cascade(net, result.messages);
  result.quiesced_at = net.now();
  return result;
}

AsyncGsResult stabilize_after_recoveries(
    Network& net, const std::vector<NodeId>& recovered) {
  SLC_EXPECT_MSG(net.idle(), "network must be idle before recovery");
  AsyncGsResult result;
  for (const NodeId back : recovered) net.recover_node(back);

  // Greetings: each healthy neighbor sends its current level to the
  // newcomer (assumption 2 makes the rejoin locally visible), and the
  // newcomer plus its neighbors recompute to seed the rising cascade.
  for (const NodeId back : recovered) {
    net.cube().for_each_neighbor(back, [&](Dim, NodeId b) {
      if (net.faults().is_healthy(b) && b != back) {
        net.send(b, back, LevelUpdate{b, net.level_of(b)});
        ++result.messages;
      }
    });
    recompute_and_cascade(net, back, result.messages);
  }
  for (const NodeId back : recovered) {
    net.cube().for_each_neighbor(back, [&](Dim, NodeId b) {
      if (net.faults().is_healthy(b)) {
        recompute_and_cascade(net, b, result.messages);
      }
    });
  }

  drain_and_cascade(net, result.messages);
  result.quiesced_at = net.now();
  return result;
}

PeriodicGsResult run_gs_periodic(Network& net, SimTime period,
                                 unsigned periods) {
  SLC_EXPECT(period >= net.link_delay());
  PeriodicGsResult result;
  const auto& cube = net.cube();
  for (unsigned p = 0; p < periods; ++p) {
    std::uint64_t wave_messages = 0;
    const std::uint64_t useful_before = result.useful;
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      if (net.faults().is_healthy(a)) wave_messages += announce(net, a);
    }
    result.messages += wave_messages;
    net.run([&](const Scheduled& ev) {
      const auto& update = std::get<LevelUpdate>(ev.envelope.body);
      const NodeId a = ev.envelope.to;
      const Dim d = bits::lowest_set(a ^ update.from);
      if (net.neighbor_register(a, d) != update.level) ++result.useful;
      net.set_neighbor_register(a, d, update.level);
      return true;
    });
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      if (net.faults().is_healthy(a)) {
        net.set_level(a, local_node_status(net, a));
      }
    }
    emit_round(net, p, result.useful - useful_before, wave_messages,
               /*egs=*/false, /*periodic=*/true);
    ++result.periods;
    net.advance_to(net.now() + period);
  }
  return result;
}

}  // namespace slcube::sim
