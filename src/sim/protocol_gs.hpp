// The GS protocol run as real message traffic over the simulator, in the
// three update disciplines Section 2.2 lists:
//
//  1. synchronous rounds (the paper's parbegin/parend presentation) —
//     every healthy node announces its level to every healthy neighbor,
//     all announcements are delivered, everyone recomputes; repeat until
//     a round changes nothing;
//  2. state-change-driven — after a failure (or recovery) each affected
//     node recomputes and announces *only when its own level changed*,
//     cascading asynchronously until quiescence;
//  3. periodic — everyone announces every `period` ticks whether or not
//     anything changed; the useful/wasted message split quantifies the
//     paper's remark that "all (or most) exchanges are wasted when all
//     (or most) of nodes' status remain stable".
//
// All three converge to the unique Theorem-1 fixed point; tests assert
// bit-equality with the centralized core::run_gs oracle.
#pragma once

#include <cstdint>

#include "sim/network.hpp"

namespace slcube::sim {

struct SyncGsResult {
  unsigned rounds = 0;            ///< rounds that changed at least one level
  std::uint64_t messages = 0;     ///< LevelUpdates sent (incl. final quiet round)
  SimTime finished_at = 0;
};

/// Discipline 1. Runs until a quiescent round. The network must be idle.
SyncGsResult run_gs_synchronous(Network& net);

/// Distributed EXTENDED_GLOBAL_STATUS (§4.1) for a network with link
/// faults: every N2 node (healthy, adjacent faulty link) declares itself
/// 0-safe and keeps announcing 0 while the N1 nodes run the regular GS
/// waves; once those quiesce, each N2 node runs NODE_STATUS once on its
/// own registers (registers behind its faulty links read 0 by
/// construction) — that value becomes its *self view*, visible in
/// level_of(), while every neighbor's register for it still holds the
/// *public view* 0. Tests assert bit-equality with core::run_egs.
SyncGsResult run_egs_synchronous(Network& net);

struct AsyncGsResult {
  std::uint64_t messages = 0;  ///< LevelUpdates triggered by the cascade
  SimTime quiesced_at = 0;
};

/// Discipline 3 (state-change-driven): `newly_failed` nodes die *now*;
/// their neighbors detect immediately, recompute, and the update cascade
/// runs to quiescence. The network must be stabilized and idle on entry.
AsyncGsResult stabilize_after_failures(Network& net,
                                       const std::vector<NodeId>& newly_failed);

/// Recovery counterpart of stabilize_after_failures: `recovered` nodes
/// rejoin *now* at level 0 (see Network::recover_node for why pessimism
/// is what makes the cascade converge); their neighbors greet them with
/// current levels, and the rising cascade runs to quiescence. The paper's
/// remark "the recovery of a faulty node will not cause disruption of a
/// unicasting" holds because every level in flight stays a sound
/// under-approximation throughout.
AsyncGsResult stabilize_after_recoveries(
    Network& net, const std::vector<NodeId>& recovered);

struct PeriodicGsResult {
  std::uint64_t messages = 0;
  std::uint64_t useful = 0;  ///< messages that changed the receiver's register
  unsigned periods = 0;
};

/// Discipline 2 (periodic): run `periods` announcement waves `period`
/// ticks apart, delivering and recomputing after each wave.
PeriodicGsResult run_gs_periodic(Network& net, SimTime period,
                                 unsigned periods);

}  // namespace slcube::sim
