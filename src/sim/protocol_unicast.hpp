// The unicast of Section 3 executed as real hop-by-hop message traffic.
// Every forwarding decision is made by the node currently holding the
// packet, from nothing but its own level and its neighbor registers —
// the distributed counterpart of core::route_unicast, with which tests
// assert hop-for-hop agreement on stabilized networks.
//
// Mid-flight failures (the Section 2.2 "demand-driven" discussion): a
// scheduled failure can kill a node while the packet travels. A sender
// always sees a *neighbor's* death (assumption 2) and re-decides with the
// updated view, so the packet is only lost if its current holder dies;
// if every preferred neighbor is dead it is aborted at that node — the
// paper's "this unicast might either be aborted or be re-routed ... after
// all the safety levels are stabilized".
#pragma once

#include <vector>

#include "analysis/path.hpp"
#include "core/unicast.hpp"
#include "sim/network.hpp"

namespace slcube::sim {

enum class SimRouteStatus : std::uint8_t {
  kDelivered,
  kRefused,  ///< source-side feasibility check failed; nothing sent
  kStuck,    ///< aborted at an intermediate node (all preferred dead)
  kLost,     ///< the node holding the packet died
};

[[nodiscard]] const char* to_string(SimRouteStatus s);

struct SimRouteResult {
  SimRouteStatus status = SimRouteStatus::kRefused;
  core::SourceDecision decision;
  analysis::Path path;  ///< nodes the packet actually visited
  SimTime injected_at = 0;
  SimTime finished_at = 0;

  [[nodiscard]] SimTime latency() const noexcept {
    return finished_at - injected_at;
  }
};

/// A failure scheduled to strike while the packet is in flight.
struct ScheduledFailure {
  SimTime time = 0;
  NodeId node = 0;
};

/// Route one unicast over the (normally stabilized) network. `failures`
/// are applied in time order as the packet progresses; pass {} for the
/// steady-state case.
SimRouteResult route_unicast_sim(Network& net, NodeId s, NodeId d,
                                 std::vector<ScheduledFailure> failures = {},
                                 const core::UnicastOptions& options = {});

}  // namespace slcube::sim
