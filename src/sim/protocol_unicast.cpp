#include "sim/protocol_unicast.hpp"

#include <algorithm>
#include <array>
#include <optional>

namespace slcube::sim {

const char* to_string(SimRouteStatus s) {
  switch (s) {
    case SimRouteStatus::kDelivered:
      return "delivered";
    case SimRouteStatus::kRefused:
      return "refused";
    case SimRouteStatus::kStuck:
      return "stuck";
    case SimRouteStatus::kLost:
      return "lost";
  }
  SLC_UNREACHABLE("bad SimRouteStatus");
}

namespace {

/// Source feasibility from purely local state (own level + registers).
core::SourceDecision local_decide(const Network& net, NodeId s, NodeId d) {
  core::SourceDecision dec;
  const auto& cube = net.cube();
  const std::uint32_t nav = cube.navigation_vector(s, d);
  dec.hamming = bits::popcount(nav);
  if (dec.hamming == 0) {
    dec.c1 = true;
    return dec;
  }
  dec.c1 = net.level_of(s) >= dec.hamming;
  for (Dim dim = 0; dim < cube.dimension(); ++dim) {
    // A dimension behind one of the source's own dead links is unusable
    // whatever its register says (and the register reads 0 anyway); the
    // source knows its own link status locally.
    if (net.link_faults().is_faulty(s, dim)) continue;
    const core::Level reg = net.neighbor_register(s, dim);
    if (bits::test(nav, dim)) {
      // H == 1: the preferred neighbor IS the destination; a healthy
      // link suffices (footnote 3) even if its advertised level is 0.
      dec.c2 |= dec.hamming == 1 || reg + 1u >= dec.hamming;
    } else {
      dec.c3 |= reg >= dec.hamming + 1u;
    }
  }
  // C1 with the destination across the source's own dead link is void
  // (the self-view guarantee excludes exactly those far ends).
  if (dec.hamming == 1 &&
      net.link_faults().is_faulty(s, bits::lowest_set(nav))) {
    dec.c1 = false;
  }
  return dec;
}

/// Max-register preferred dimension (level > 0), lowest dim or random.
std::optional<Dim> local_choose(const Network& net, NodeId a,
                                std::uint32_t mask, bool preferred,
                                const core::UnicastOptions& options,
                                unsigned* ties_out = nullptr) {
  const unsigned n = net.cube().dimension();
  std::array<Dim, topo::Hypercube::kMaxDimension> pool{};
  std::size_t ties = 0;
  int best = 0;
  for (Dim dim = 0; dim < n; ++dim) {
    if (bits::test(mask, dim) != preferred) continue;
    const int level = net.neighbor_register(a, dim);
    if (level > best) {
      best = level;
      pool[0] = dim;
      ties = 1;
    } else if (level == best && best > 0) {
      pool[ties++] = dim;
    }
  }
  if (ties_out != nullptr) *ties_out = static_cast<unsigned>(ties);
  if (ties == 0) return std::nullopt;
  if (options.tie_break == core::TieBreak::kLowestDim || ties == 1) {
    return pool[0];
  }
  SLC_EXPECT(options.rng != nullptr);
  return pool[options.rng->below(ties)];
}

void emit_source(obs::TraceSink* trace, const core::SourceDecision& dec,
                 NodeId s, NodeId d, int chosen_dim, unsigned ties,
                 bool spare) {
  obs::SourceDecisionEvent ev;
  ev.source = s;
  ev.dest = d;
  ev.hamming = dec.hamming;
  ev.c1 = dec.c1;
  ev.c2 = dec.c2;
  ev.c3 = dec.c3;
  ev.chosen_dim = chosen_dim;
  ev.ties = ties;
  ev.spare = spare;
  trace->on_event(ev);
}

void emit_hop(obs::TraceSink* trace, const Network& net, NodeId from,
              Dim dim, std::uint32_t nav_before, std::uint32_t nav_after,
              bool preferred, unsigned ties) {
  obs::HopEvent ev;
  ev.from = from;
  ev.to = net.cube().neighbor(from, dim);
  ev.dim = dim;
  ev.level = net.neighbor_register(from, dim);
  ev.nav_before = nav_before;
  ev.nav_after = nav_after;
  ev.preferred = preferred;
  ev.ties = ties;
  trace->on_event(ev);
}

void emit_done(obs::TraceSink* trace, NodeId s, NodeId d,
               SimRouteStatus status, std::size_t path_len) {
  obs::RouteDoneEvent ev;
  ev.source = s;
  ev.dest = d;
  ev.status = to_string(status);
  ev.hops = path_len > 0 ? static_cast<unsigned>(path_len - 1) : 0;
  trace->on_event(ev);
}

}  // namespace

SimRouteResult route_unicast_sim(Network& net, NodeId s, NodeId d,
                                 std::vector<ScheduledFailure> failures,
                                 const core::UnicastOptions& options) {
  SLC_EXPECT(net.faults().is_healthy(s));
  SLC_EXPECT(net.faults().is_healthy(d));
  SLC_EXPECT_MSG(net.idle(), "network must be idle before a unicast");
  std::sort(failures.begin(), failures.end(),
            [](const ScheduledFailure& a, const ScheduledFailure& b) {
              return a.time < b.time;
            });
  std::size_t next_failure = 0;
  auto apply_due_failures = [&](SimTime now) {
    for (; next_failure < failures.size() &&
           failures[next_failure].time <= now;
         ++next_failure) {
      const NodeId dead = failures[next_failure].node;
      if (net.faults().is_healthy(dead)) net.fail_node(dead);
    }
  };

  // Events go to the per-call sink when given, else the network's.
  obs::TraceSink* const trace =
      options.trace != nullptr ? options.trace : net.trace();

  SimRouteResult result;
  result.injected_at = net.now();
  result.decision = local_decide(net, s, d);
  result.path.push_back(s);
  apply_due_failures(net.now());

  std::uint32_t nav = net.cube().navigation_vector(s, d);
  if (nav == 0) {
    result.status = SimRouteStatus::kDelivered;
    result.finished_at = net.now();
    if (trace != nullptr) {
      emit_source(trace, result.decision, s, d, -1, 0, false);
      emit_done(trace, s, d, result.status, result.path.size());
    }
    return result;
  }

  // Locally-checkable final hop (assumption 2 + footnote 3): when the
  // destination is the only preferred neighbor left, deliver across the
  // connecting link if that link and the destination are alive — even if
  // the destination's advertised level is 0 (an N2 node others treat as
  // faulty).
  auto final_hop_dim = [&](NodeId holder,
                           std::uint32_t rem) -> std::optional<Dim> {
    if (bits::popcount(rem) != 1) return std::nullopt;
    const Dim dim = bits::lowest_set(rem);
    if (net.link_faults().is_faulty(holder, dim) ||
        net.faults().is_faulty(net.cube().neighbor(holder, dim))) {
      return std::nullopt;
    }
    return dim;
  };

  // Source-side dispatch: optimal via best preferred, suboptimal via the
  // one spare detour, else refuse without sending anything.
  bool launched = false;
  if (result.decision.optimal_feasible()) {
    unsigned ties = 1;  // final_hop_dim is a forced move
    auto dim = final_hop_dim(s, nav);
    if (!dim) dim = local_choose(net, s, nav, true, options, &ties);
    if (dim) {
      UnicastPacket pkt{0, s, d, nav & ~bits::unit(*dim), false};
      if (trace != nullptr) {
        emit_source(trace, result.decision, s, d, static_cast<int>(*dim),
                    ties, false);
        emit_hop(trace, net, s, *dim, nav, pkt.nav, true, ties);
      }
      net.send(s, net.cube().neighbor(s, *dim), pkt);
      launched = true;
    }
  }
  if (!launched && result.decision.c3) {
    unsigned ties = 0;
    const auto dim = local_choose(net, s, nav, false, options, &ties);
    if (dim && net.neighbor_register(s, *dim) >=
                   result.decision.hamming + 1u) {
      UnicastPacket pkt{0, s, d, nav | bits::unit(*dim), true};
      if (trace != nullptr) {
        emit_source(trace, result.decision, s, d, static_cast<int>(*dim),
                    ties, true);
        emit_hop(trace, net, s, *dim, nav, pkt.nav, false, ties);
      }
      net.send(s, net.cube().neighbor(s, *dim), pkt);
      launched = true;
    }
  }
  if (!launched) {
    result.status = SimRouteStatus::kRefused;
    result.finished_at = net.now();
    if (trace != nullptr) {
      emit_source(trace, result.decision, s, d, -1, 0, false);
      emit_done(trace, s, d, result.status, result.path.size());
    }
    return result;
  }

  // In flight: the queue holds exactly this packet; if it drains without
  // a terminal decision the packet died with its holder.
  result.status = SimRouteStatus::kLost;
  net.run([&](const Scheduled& ev) {
    apply_due_failures(ev.time);
    const NodeId a = ev.envelope.to;
    if (net.faults().is_faulty(a)) return false;  // died as the packet landed
    const auto& pkt = std::get<UnicastPacket>(ev.envelope.body);
    result.path.push_back(a);
    if (pkt.nav == 0) {
      result.status = SimRouteStatus::kDelivered;
      result.finished_at = net.now();
      return false;
    }
    unsigned ties = 1;
    auto dim = final_hop_dim(a, pkt.nav);
    if (!dim) dim = local_choose(net, a, pkt.nav, true, options, &ties);
    if (!dim) {
      result.status = SimRouteStatus::kStuck;
      result.finished_at = net.now();
      return false;
    }
    UnicastPacket fwd = pkt;
    fwd.nav &= ~bits::unit(*dim);
    if (trace != nullptr) {
      emit_hop(trace, net, a, *dim, pkt.nav, fwd.nav, true, ties);
    }
    net.send(a, net.cube().neighbor(a, *dim), fwd);
    return true;
  });
  if (result.status == SimRouteStatus::kLost) result.finished_at = net.now();
  if (trace != nullptr) {
    emit_done(trace, s, d, result.status, result.path.size());
  }
  return result;
}

}  // namespace slcube::sim
