#include "sim/protocol_sv.hpp"

#include <vector>

namespace slcube::sim {

SvProtocolResult run_sv_synchronous(Network& net) {
  SLC_EXPECT_MSG(net.idle(), "network must be idle before the SV protocol");
  const auto& cube = net.cube();
  const unsigned n = cube.dimension();
  SvProtocolResult result;
  result.vectors = core::SafetyVectors(n, cube.num_nodes());

  // Bit 1 is local knowledge: every healthy node can reach all its
  // neighbors in one hop.
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (net.faults().is_healthy(a)) result.vectors.set_bit(a, 1);
  }

  // One register per (node, dim) holding the neighbor's announced bit of
  // the current round; kept locally here — the protocol does not disturb
  // the level registers of the Network.
  std::vector<std::vector<bool>> heard(
      static_cast<std::size_t>(cube.num_nodes()), std::vector<bool>(n));

  for (unsigned k = 1; k < n; ++k) {
    // Announcement wave: bit k travels as a LevelUpdate carrying 0/1.
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      if (net.faults().is_faulty(a)) continue;
      const core::Level bit_val = result.vectors.bit(a, k) ? 1 : 0;
      cube.for_each_neighbor(a, [&](Dim, NodeId b) {
        if (net.faults().is_healthy(b)) {
          net.send(a, b, LevelUpdate{a, bit_val});
          ++result.messages;
        }
      });
    }
    for (auto& row : heard) row.assign(n, false);
    net.run([&](const Scheduled& ev) {
      const auto& update = std::get<LevelUpdate>(ev.envelope.body);
      const NodeId a = ev.envelope.to;
      heard[a][bits::lowest_set(a ^ update.from)] = update.level != 0;
      return true;
    });
    // Derive bit k + 1: at least n - k neighbors with bit k set.
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      if (net.faults().is_faulty(a)) continue;
      unsigned with_bit = 0;
      for (Dim d = 0; d < n; ++d) with_bit += heard[a][d] ? 1u : 0u;
      if (with_bit >= n - k) result.vectors.set_bit(a, k + 1);
    }
    ++result.rounds;
  }
  return result;
}

}  // namespace slcube::sim
