#include "sim/network.hpp"

#include <algorithm>

namespace slcube::sim {

Network::Network(topo::Hypercube cube, fault::FaultSet faults,
                 SimTime link_delay)
    : Network(cube, std::move(faults), fault::LinkFaultSet(cube),
              link_delay) {}

Network::Network(topo::Hypercube cube, fault::FaultSet faults,
                 fault::LinkFaultSet link_faults, SimTime link_delay)
    : cube_(cube),
      faults_(std::move(faults)),
      link_faults_(std::move(link_faults)),
      link_delay_(link_delay),
      sent_level_updates_(metrics_.counter("net.sent.level_update")),
      sent_unicast_hops_(metrics_.counter("net.sent.unicast_hop")),
      drop_dead_(metrics_.counter("net.dropped.dead_node")),
      drop_link_(metrics_.counter("net.dropped.faulty_link")),
      node_failures_(metrics_.counter("net.node.failures")),
      node_recoveries_(metrics_.counter("net.node.recoveries")) {
  SLC_EXPECT(link_delay_ >= 1);
  SLC_EXPECT(faults_.num_nodes() == cube_.num_nodes());
  const auto num = static_cast<std::size_t>(cube_.num_nodes());
  const unsigned n = cube_.dimension();
  // Paper initialization: healthy nodes start n-safe, faulty nodes 0-safe;
  // registers reflect exact one-hop knowledge (assumption 2).
  levels_.assign(num, static_cast<core::Level>(n));
  registers_.assign(num, std::vector<core::Level>(n, 0));
  for (NodeId a = 0; a < num; ++a) {
    if (faults_.is_faulty(a)) {
      levels_[a] = 0;
      continue;
    }
    for (Dim d = 0; d < n; ++d) {
      registers_[a][d] = faults_.is_faulty(cube_.neighbor(a, d))
                             ? core::Level{0}
                             : static_cast<core::Level>(n);
    }
  }
}

std::vector<core::Level> Network::sorted_registers(NodeId a) const {
  const unsigned n = cube_.dimension();
  std::vector<core::Level> seq(n);
  for (Dim d = 0; d < n; ++d) seq[d] = neighbor_register(a, d);
  std::sort(seq.begin(), seq.end());
  return seq;
}

NetworkStats Network::stats() const {
  NetworkStats s;
  s.level_updates_sent = sent_level_updates_.value();
  s.unicast_hops = sent_unicast_hops_.value();
  s.dropped_dead_node = drop_dead_.value();
  s.dropped_faulty_link = drop_link_.value();
  s.dropped = s.dropped_dead_node + s.dropped_faulty_link;
  s.node_failures = node_failures_.value();
  s.node_recoveries = node_recoveries_.value();
  return s;
}

void Network::send(NodeId from, NodeId to, Body body) {
  SLC_EXPECT_MSG(cube_.adjacent(from, to),
                 "nodes can only message direct neighbors");
  SLC_EXPECT_MSG(faults_.is_healthy(from), "a dead node cannot send");
  const obs::MsgKind kind = kind_of(body);
  if (kind == obs::MsgKind::kLevelUpdate) {
    sent_level_updates_.inc();
  } else {
    sent_unicast_hops_.inc();
  }
  if (trace_ != nullptr) {
    obs::MessageSendEvent ev;
    ev.time = now_;
    ev.from = from;
    ev.to = to;
    ev.kind = kind;
    trace_->on_event(ev);
  }
  // Link faults are checked at DELIVERY time (Network::run), exactly like
  // node faults: a message in flight when its wire dies is lost, and one
  // launched onto an already-dead wire simply never arrives. Checking
  // here would make the two fault kinds asymmetric.
  queue_.schedule(now_ + link_delay_, Envelope{from, to, std::move(body)});
}

void Network::fail_link(NodeId a, Dim d) {
  SLC_EXPECT(!link_faults_.is_faulty(a, d));
  link_faults_.mark_faulty(a, d);
  // In-flight messages on this wire are dropped when their delivery time
  // comes (Network::run); registers behind the link read 0 immediately
  // via neighbor_register()'s link check.
}

void Network::recover_link(NodeId a, Dim d) {
  SLC_EXPECT(link_faults_.is_faulty(a, d));
  link_faults_.mark_healthy(a, d);
}

void Network::fail_node(NodeId a) {
  SLC_EXPECT(faults_.is_healthy(a));
  faults_.mark_faulty(a);
  levels_[a] = 0;
  node_failures_.inc();
  if (trace_ != nullptr) trace_->on_event(obs::NodeFailEvent{now_, a});
  // Neighbors' liveness view is hardware-level and immediate; their
  // cached level registers for `a` drop to 0 via neighbor_register()'s
  // fault check, so nothing else to update here.
}

void Network::recover_node(NodeId a) {
  SLC_EXPECT(faults_.is_faulty(a));
  faults_.mark_healthy(a);
  node_recoveries_.inc();
  if (trace_ != nullptr) trace_->on_event(obs::NodeRecoverEvent{now_, a});
  const unsigned n = cube_.dimension();
  // The rejoining node starts PESSIMISTIC: level 0 and all-zero neighbor
  // registers. Together with its neighbors' caches (also reset to 0
  // below) the whole network state then sits pointwise BELOW the new
  // fixed point, so the recovery cascade rises monotonically and
  // converges to the unique Theorem-1 assignment — the optimistic n
  // start the paper uses for a full GS would make the rejoin state
  // non-monotone and is reserved for full restarts.
  levels_[a] = 0;
  for (Dim d = 0; d < n; ++d) registers_[a][d] = 0;
  cube_.for_each_neighbor(a, [&](Dim, NodeId b) {
    if (faults_.is_healthy(b)) {
      const Dim back = bits::lowest_set(a ^ b);
      registers_[b][back] = 0;
    }
  });
}

}  // namespace slcube::sim
