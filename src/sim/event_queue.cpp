#include "sim/event_queue.hpp"

namespace slcube::sim {

void EventQueue::schedule(SimTime time, Envelope envelope) {
  heap_.push(Scheduled{time, next_seq_++, std::move(envelope)});
}

std::optional<Scheduled> EventQueue::pop() {
  if (heap_.empty()) return std::nullopt;
  Scheduled top = heap_.top();
  heap_.pop();
  return top;
}

}  // namespace slcube::sim
