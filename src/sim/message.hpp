// Wire messages of the distributed protocols. Everything a node learns,
// it learns from one of these — the node agents never peek at global
// state (the paper's model: each node knows its neighbors' safety status
// and nothing else).
#pragma once

#include <cstdint>
#include <variant>

#include "common/bitops.hpp"
#include "core/safety.hpp"

namespace slcube::sim {

/// One neighbor announcing its current safety level (GS traffic).
struct LevelUpdate {
  NodeId from = 0;
  core::Level level = 0;
};

/// A unicast message in flight, carrying the paper's navigation vector.
struct UnicastPacket {
  std::uint32_t id = 0;  ///< unicast identifier (for the trace)
  NodeId source = 0;
  NodeId dest = 0;
  std::uint32_t nav = 0;    ///< navigation vector N
  bool took_spare = false;  ///< a suboptimal detour hop was taken
};

using Body = std::variant<LevelUpdate, UnicastPacket>;

struct Envelope {
  NodeId from = 0;
  NodeId to = 0;
  Body body;
};

}  // namespace slcube::sim
