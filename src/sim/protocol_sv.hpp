// The safety-vector extension as a distributed protocol: exactly n - 1
// synchronous rounds, one vector bit per round. Round k has every
// healthy node announce its bit k to all healthy neighbors; each node
// then derives bit k + 1 by counting how many neighbors announced 1
// (the core/safety_vector.hpp recurrence). There is no fixed-point
// iteration and no quiescence detection — the round count is static,
// which is the cost-model advantage the extension inherits from GS.
#pragma once

#include "core/safety_vector.hpp"
#include "sim/network.hpp"

namespace slcube::sim {

struct SvProtocolResult {
  core::SafetyVectors vectors;
  unsigned rounds = 0;  ///< always dimension - 1 (or 0 for Q1)
  std::uint64_t messages = 0;
};

/// Run the n-1-round vector computation over the network's node-fault
/// set (link faults are not part of the vector extension). The network
/// must be idle; its level/register state is not touched.
SvProtocolResult run_sv_synchronous(Network& net);

}  // namespace slcube::sim
