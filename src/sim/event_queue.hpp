// A deterministic discrete-event queue: events fire in (time, sequence)
// order, so two events scheduled for the same tick are processed in the
// order they were scheduled. Determinism matters more than raw speed
// here — every simulation in the test suite must be bit-reproducible.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "sim/message.hpp"

namespace slcube::sim {

using SimTime = std::uint64_t;

struct Scheduled {
  SimTime time = 0;
  std::uint64_t seq = 0;  ///< tie-breaker: FIFO among same-time events
  Envelope envelope;
};

class EventQueue {
 public:
  void schedule(SimTime time, Envelope envelope);

  /// Pop the earliest event; nullopt when empty.
  [[nodiscard]] std::optional<Scheduled> pop();

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Time of the earliest pending event (0 when empty).
  [[nodiscard]] SimTime next_time() const noexcept {
    return heap_.empty() ? 0 : heap_.top().time;
  }

 private:
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace slcube::sim
