// The simulated machine: a faulty hypercube whose nodes hold only local
// state — their own safety level and one register per dimension caching
// the last level heard from that neighbor. All inter-node communication
// flows through the event queue with a fixed per-link delay.
//
// Fault model: fail-stop (assumption 1 of the paper). Messages are
// dropped (and counted) when, at DELIVERY time, either the link they
// travel on or the node they address is faulty — both fault kinds use
// the same delivery-time rule, so a wire dying mid-flight loses the
// message.
// Per assumption 2, a node can always interrogate the *liveness* of a
// direct neighbor (hardware heartbeat); what it cannot see is anything
// beyond one hop — that information only arrives via LevelUpdate
// messages, which is exactly what the GS protocol provides.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_set.hpp"
#include "fault/link_fault_set.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "topology/hypercube.hpp"

namespace slcube::sim {

/// Scrape view over the network's obs::Registry (the counters themselves
/// live in the registry under the "net.*" names; this struct is the
/// stable convenience API the tests and benches read).
struct NetworkStats {
  std::uint64_t level_updates_sent = 0;
  std::uint64_t unicast_hops = 0;
  std::uint64_t dropped = 0;  ///< dead-node + faulty-link drops combined
  std::uint64_t dropped_dead_node = 0;
  std::uint64_t dropped_faulty_link = 0;
  std::uint64_t node_failures = 0;
  std::uint64_t node_recoveries = 0;
};

class Network {
 public:
  Network(topo::Hypercube cube, fault::FaultSet faults, SimTime link_delay = 1);

  /// Section 4.1 machine: node faults plus faulty links. Messages across
  /// a faulty link are dropped (and counted); a register behind a faulty
  /// link reads 0 — the node can neither hear from nor use that
  /// neighbor, exactly the "treat the other end as faulty" rule.
  Network(topo::Hypercube cube, fault::FaultSet faults,
          fault::LinkFaultSet link_faults, SimTime link_delay = 1);

  [[nodiscard]] const topo::Hypercube& cube() const noexcept { return cube_; }
  [[nodiscard]] const fault::FaultSet& faults() const noexcept {
    return faults_;
  }
  [[nodiscard]] const fault::LinkFaultSet& link_faults() const noexcept {
    return link_faults_;
  }
  /// Healthy node with at least one adjacent faulty link (the paper's N2).
  [[nodiscard]] bool in_n2(NodeId a) const {
    return faults_.is_healthy(a) && link_faults_.touches(a);
  }
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] SimTime link_delay() const noexcept { return link_delay_; }
  /// Point-in-time counter snapshot (scraped from metrics()).
  [[nodiscard]] NetworkStats stats() const;

  /// The network's metrics registry; counters live under "net.*". Useful
  /// for exporting a full snapshot (scrape().write_json) next to results.
  [[nodiscard]] const obs::Registry& metrics() const noexcept {
    return metrics_;
  }

  /// Attach/detach a structured trace sink. When set, the network emits
  /// MessageSend/MessageDrop/NodeFail/NodeRecover events and the
  /// protocols layered on top add GS-round and unicast-hop events.
  void set_trace(obs::TraceSink* sink) noexcept { trace_ = sink; }
  [[nodiscard]] obs::TraceSink* trace() const noexcept { return trace_; }

  /// --- local node state (the protocols' only view of the world) ---

  [[nodiscard]] core::Level level_of(NodeId a) const noexcept {
    return levels_[a];
  }
  void set_level(NodeId a, core::Level level) noexcept { levels_[a] = level; }

  /// Register: the last level node `a` heard from its dimension-`d`
  /// neighbor (kept exact for liveness per assumption 2: a freshly dead
  /// neighbor reads as 0 immediately).
  [[nodiscard]] core::Level neighbor_register(NodeId a, Dim d) const {
    const NodeId b = cube_.neighbor(a, d);
    if (faults_.is_faulty(b) || link_faults_.is_faulty(a, d)) {
      return 0;
    }
    return registers_[a][d];
  }
  void set_neighbor_register(NodeId a, Dim d, core::Level level) {
    registers_[a][d] = level;
  }

  /// Sorted register snapshot of node `a` (input to NODE_STATUS).
  [[nodiscard]] std::vector<core::Level> sorted_registers(NodeId a) const;

  /// --- messaging ---

  /// Send a message from `from` to its neighbor `to`; it arrives
  /// link_delay later (dropped then if the wire or `to` has died
  /// meanwhile).
  void send(NodeId from, NodeId to, Body body);

  /// --- fault injection (test/bench hooks, not visible to protocols) ---

  /// Node `a` dies now. Its neighbors' liveness view updates immediately
  /// (assumption 2); their cached registers go to 0.
  void fail_node(NodeId a);

  /// A previously faulty node recovers (Section 2.2: "the occurrence (or
  /// recovery) of faulty nodes"). It rejoins PESSIMISTICALLY at level 0
  /// with all-zero neighbor registers, and its neighbors' cached
  /// registers for it are reset to 0 as well — that puts the whole state
  /// pointwise below the new fixed point, so the recovery cascade rises
  /// monotonically to the unique Theorem-1 assignment. (The paper's
  /// optimistic level-n start is only used for full GS restarts; a
  /// level-n rejoin here would be non-monotone.) Registers then refresh
  /// through ordinary GS activity (state-change or periodic), not
  /// magically.
  void recover_node(NodeId a);

  /// The link between `a` and its dimension-`d` neighbor dies now.
  /// Messages already in flight on it are dropped at their delivery time
  /// (never silently delivered); registers behind it read 0 immediately.
  void fail_link(NodeId a, Dim d);

  /// A previously faulty link recovers. Registers across it refresh via
  /// the next GS activity, like a node recovery.
  void recover_link(NodeId a, Dim d);

  /// --- event loop ---

  /// Deliver events in order until the queue is empty or `handler`
  /// requests a stop. handler(Scheduled) -> bool keep_running; it is only
  /// invoked for messages whose recipient is alive at delivery time.
  template <typename Handler>
  void run(Handler&& handler) {
    while (auto ev = queue_.pop()) {
      SLC_ASSERT(ev->time >= now_);
      now_ = ev->time;
      // Both fault kinds are judged by the state AT DELIVERY TIME: a
      // message is lost if its wire or its recipient is faulty when it
      // arrives, even if both were healthy at send time. The wire is
      // checked first — a message cannot reach a node it never got to.
      const NodeId from = ev->envelope.from;
      const NodeId to = ev->envelope.to;
      if (link_faults_.is_faulty(to, bits::lowest_set(from ^ to))) {
        drop_link_.inc();
        emit_drop(*ev, "faulty-link");
        continue;
      }
      if (faults_.is_faulty(to)) {
        drop_dead_.inc();
        emit_drop(*ev, "dead-node");
        continue;
      }
      if (!handler(*ev)) return;
    }
  }

  /// Advance the clock with no message traffic (used between rounds of
  /// the synchronous protocol).
  void advance_to(SimTime t) {
    SLC_EXPECT(t >= now_);
    now_ = t;
  }

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }

 private:
  [[nodiscard]] static obs::MsgKind kind_of(const Body& body) noexcept {
    return std::holds_alternative<LevelUpdate>(body)
               ? obs::MsgKind::kLevelUpdate
               : obs::MsgKind::kUnicast;
  }

  void emit_drop(const Scheduled& ev, const char* reason) {
    if (trace_ == nullptr) return;
    obs::MessageDropEvent drop;
    drop.time = now_;
    drop.from = ev.envelope.from;
    drop.to = ev.envelope.to;
    drop.kind = kind_of(ev.envelope.body);
    drop.reason = reason;
    trace_->on_event(drop);
  }

  topo::Hypercube cube_;
  fault::FaultSet faults_;
  fault::LinkFaultSet link_faults_;
  SimTime link_delay_;
  SimTime now_ = 0;
  std::vector<core::Level> levels_;
  std::vector<std::vector<core::Level>> registers_;
  EventQueue queue_;
  obs::Registry metrics_;  ///< declared before the handles bound to it
  obs::Counter sent_level_updates_;
  obs::Counter sent_unicast_hops_;
  obs::Counter drop_dead_;
  obs::Counter drop_link_;
  obs::Counter node_failures_;
  obs::Counter node_recoveries_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace slcube::sim
