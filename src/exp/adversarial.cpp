#include "exp/adversarial.hpp"

#include <memory>

#include "common/contracts.hpp"
#include "core/unicast.hpp"

namespace slcube::exp {

const char* to_string(Objective o) {
  switch (o) {
    case Objective::kSourceRejects:
      return "source-rejects";
    case Objective::kDetours:
      return "detours";
  }
  SLC_UNREACHABLE("bad Objective");
}

namespace {

/// Substream ids within the search's seed: probes are drawn outside the
/// restart family so adding restarts never reshuffles the exam.
constexpr std::uint64_t kProbeStream = 0xAD0;
constexpr std::uint64_t kRestartStream = 0xAD1;

struct RestartOut {
  fault::FaultSet best;
  std::uint64_t best_score = 0;
  std::uint64_t init_score = 0;
  std::uint64_t evals = 0;
};

}  // namespace

std::vector<ProbePair> make_probes(const topo::Hypercube& cube,
                                   std::uint64_t seed, std::size_t count) {
  Xoshiro256ss rng = substream(seed, kProbeStream, 0);
  std::vector<ProbePair> probes(count);
  for (ProbePair& p : probes) {
    p.s = static_cast<NodeId>(rng.below(cube.num_nodes()));
    do {
      p.d = static_cast<NodeId>(rng.below(cube.num_nodes()));
    } while (p.d == p.s);
  }
  return probes;
}

std::uint64_t score_placement(const topo::Hypercube& cube,
                              const core::SafetyLevels& levels,
                              const fault::FaultSet& faults,
                              const std::vector<ProbePair>& probes,
                              Objective objective) {
  std::uint64_t score = 0;
  for (const ProbePair& p : probes) {
    if (faults.is_faulty(p.s) || faults.is_faulty(p.d)) continue;
    const core::SourceDecision dec =
        core::decide_at_source(cube, levels, p.s, p.d);
    if (objective == Objective::kSourceRejects) {
      score += dec.feasible() ? 0u : 1u;
    } else {
      // The spare detour fires iff C3 is the only open condition.
      score += (!dec.optimal_feasible() && dec.c3) ? 1u : 0u;
    }
  }
  return score;
}

AdversarialResult adversarial_search(const topo::Hypercube& cube,
                                     const AdversarialConfig& config) {
  SLC_EXPECT_MSG(config.fault_count + 2 <= cube.num_nodes(),
                 "placement must leave room for healthy probe endpoints");
  SLC_EXPECT(config.probes > 0 && config.restarts > 0);
  const std::vector<ProbePair> probes =
      make_probes(cube, config.seed, config.probes);

  EngineOptions engine_options;
  engine_options.threads = config.threads;
  engine_options.seed = config.seed;
  SweepEngine engine(engine_options);

  // Worker-scoped oracles: successive proposals within a restart differ
  // by at most a 2-node swap, exactly the regime where the incremental
  // retarget cascade beats a from-scratch GS. Sound because the oracle's
  // table is bit-identical to a fresh recomputation.
  const std::size_t slots = std::max<std::size_t>(1, engine.workers());
  std::vector<std::unique_ptr<core::SafetyOracle>> oracles(slots);

  auto results = engine.map<RestartOut>(
      kRestartStream, config.restarts, [&](TrialContext& ctx) {
        auto& oracle = oracles[ctx.worker];
        if (!oracle) oracle = std::make_unique<core::SafetyOracle>(cube);

        // Initial random placement — also the control arm.
        std::vector<NodeId> placed;
        placed.reserve(config.fault_count);
        fault::FaultSet current(cube.num_nodes());
        for (const std::uint64_t a : sample_without_replacement(
                 cube.num_nodes(), config.fault_count, ctx.rng)) {
          placed.push_back(static_cast<NodeId>(a));
          current.mark_faulty(static_cast<NodeId>(a));
        }

        RestartOut out;
        oracle->retarget(current);
        std::uint64_t score = score_placement(cube, oracle->levels(), current,
                                              probes, config.objective);
        ++out.evals;
        out.init_score = score;
        out.best = current;
        out.best_score = score;

        const std::size_t total_moves = config.greedy_moves + config.sa_moves;
        double temperature = config.sa_t0;
        for (std::size_t move = 0; move < total_moves; ++move) {
          // Propose swapping one placed fault for a random healthy node.
          const std::size_t slot = ctx.rng.below(placed.size());
          NodeId incoming;
          do {
            incoming = static_cast<NodeId>(ctx.rng.below(cube.num_nodes()));
          } while (current.is_faulty(incoming));
          fault::FaultSet candidate = current;
          candidate.mark_healthy(placed[slot]);
          candidate.mark_faulty(incoming);

          oracle->retarget(candidate);
          const std::uint64_t cand_score = score_placement(
              cube, oracle->levels(), candidate, probes, config.objective);
          ++out.evals;

          bool accept;
          if (move < config.greedy_moves) {
            accept = cand_score > score;
          } else {
            // Annealing tail: Barker acceptance T / (T + deficit) —
            // division only, bit-deterministic across platforms.
            if (cand_score >= score) {
              accept = true;
            } else {
              const double deficit = static_cast<double>(score - cand_score);
              accept =
                  ctx.rng.uniform01() < temperature / (temperature + deficit);
            }
            temperature *= config.sa_cooling;
          }
          if (accept) {
            placed[slot] = incoming;
            current = std::move(candidate);
            score = cand_score;
            if (score > out.best_score) {
              out.best_score = score;
              out.best = current;
            }
          }
        }
        return out;
      });

  AdversarialResult result;
  result.best = fault::FaultSet(cube.num_nodes());
  result.restart_scores.reserve(results.size());
  std::uint64_t init_sum = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RestartOut& r = results[i];
    result.restart_scores.push_back(r.best_score);
    if (i == 0 || r.best_score > result.best_score) {
      result.best_score = r.best_score;
      result.best_restart = i;
      result.best = r.best;
    }
    result.random_best = std::max(result.random_best, r.init_score);
    init_sum += r.init_score;
    result.evals += r.evals;
  }
  result.random_mean =
      static_cast<double>(init_sum) / static_cast<double>(results.size());
  return result;
}

}  // namespace slcube::exp
