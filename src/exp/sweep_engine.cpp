#include "exp/sweep_engine.hpp"

namespace slcube::exp {

std::vector<double> trial_latency_bounds() {
  return obs::exponential_bounds(1.0, 2.0, 26);
}

SweepEngine::SweepEngine(EngineOptions options)
    : pool_(options.threads),
      seed_(options.seed),
      registry_(options.registry != nullptr ? options.registry : &metrics_),
      profiler_(options.profiler),
      trials_run_(registry_->counter("exp.trials_run")) {}

}  // namespace slcube::exp
