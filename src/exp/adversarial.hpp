// slcube::exp — adversarial fault search: instead of asking "how does
// the algorithm fare under random faults?" (the paper's Fig. 2 setup),
// ask "how bad can `fault_count` faults be MADE to be?". A local search
// over fault placements — greedy descent into a simulated-annealing
// tail, restarted from independent random placements — maximizes an
// objective scored against a fixed probe set of source/destination
// pairs:
//
//  * kSourceRejects — probes whose source decision fails C1, C2 and C3
//    (the message is never sent although both endpoints are alive);
//  * kDetours       — probes forced onto the H + 2 spare detour
//    (C3-only decisions: delivered, but strictly suboptimally).
//
// Restarts are mapped over the SweepEngine, one substream per restart,
// and reduced in restart order — results are bit-identical at any
// --threads. The score of each restart's *initial* random placement
// doubles as the random-placement baseline the search must beat, so
// every AdversarialResult carries its own control arm.
//
// Acceptance in the annealing tail uses the Barker criterion
// T / (T + deficit) rather than exp(-deficit/T): it needs only IEEE
// division, so the accept/reject sequence — and therefore the checked-in
// digest — cannot drift across libm implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "core/safety_oracle.hpp"
#include "exp/sweep_engine.hpp"
#include "fault/fault_set.hpp"

namespace slcube::exp {

enum class Objective : std::uint8_t {
  kSourceRejects,  ///< maximize probes refused at the source
  kDetours,        ///< maximize probes forced onto the H+2 detour
};
[[nodiscard]] const char* to_string(Objective o);

/// One scored unicast request. Probes are fixed before the search so
/// every placement is graded on the same exam.
struct ProbePair {
  NodeId s = 0;
  NodeId d = 0;
};

struct AdversarialConfig {
  std::uint64_t fault_count = 12;
  Objective objective = Objective::kSourceRejects;
  std::size_t probes = 96;        ///< probe pairs scored per placement
  std::size_t restarts = 8;       ///< independent search restarts
  std::size_t greedy_moves = 48;  ///< strict-improvement phase length
  std::size_t sa_moves = 160;     ///< annealing phase length
  double sa_t0 = 3.0;             ///< initial temperature (score units)
  double sa_cooling = 0.97;       ///< temperature decay per move
  std::uint64_t seed = 0x5EED0A11;
  unsigned threads = 0;           ///< SweepEngine workers; 0 = all cores
};

struct AdversarialResult {
  fault::FaultSet best;            ///< the worst placement found
  std::uint64_t best_score = 0;
  std::size_t best_restart = 0;    ///< restart index that found it
  /// Per-restart best scores in restart order (digest fodder).
  std::vector<std::uint64_t> restart_scores;
  /// The random-placement control arm: the initial placement of every
  /// restart, scored before any search move.
  std::uint64_t random_best = 0;
  double random_mean = 0.0;
  std::uint64_t evals = 0;         ///< placements scored in total
};

/// The probe set for (seed, count): uniform ground-distinct pairs, a
/// pure function of its arguments (placement-independent).
[[nodiscard]] std::vector<ProbePair> make_probes(const topo::Hypercube& cube,
                                                 std::uint64_t seed,
                                                 std::size_t count);

/// Score one placement against the probes: the number of probes with
/// both endpoints healthy whose source decision matches the objective.
[[nodiscard]] std::uint64_t score_placement(const topo::Hypercube& cube,
                                            const core::SafetyLevels& levels,
                                            const fault::FaultSet& faults,
                                            const std::vector<ProbePair>& probes,
                                            Objective objective);

/// Run the full search. Deterministic for a fixed (cube, config) at any
/// config.threads.
[[nodiscard]] AdversarialResult adversarial_search(
    const topo::Hypercube& cube, const AdversarialConfig& config);

}  // namespace slcube::exp
