// slcube::exp — the shared parallel sweep engine.
//
// Every experiment binary used to hand-roll the same trial loop: a master
// RNG, a per-trial fork, ad-hoc chunking over the process thread pool and
// a hand-merged accumulator per chunk. This unit factors that loop into
// one engine with three hard guarantees:
//
//  * Determinism — the RNG substream of trial t is a pure function of
//    (engine seed, stream id, t), derived through a SplitMix64-style
//    counter mix, never from which worker ran the trial or in what
//    order. map() returns per-trial results indexed by trial, and
//    fold()/callers reduce them in trial order, so every aggregate is
//    bit-identical at any --threads value.
//  * Parallelism — trials are statically chunked over a dedicated
//    common/thread_pool (experiments are embarrassingly parallel;
//    chunking is the whole scheduler).
//  * Observability — the engine owns an obs::Registry. Counter writes
//    from worker threads land in the registry's per-thread shards and
//    scrape() merges them, so trial bodies can count events without any
//    hot-path synchronization; per-point wall/utilization/latency
//    percentiles come back through EngineTiming.
//
// Worker-scoped caches (e.g. a core::SafetyOracle reused across the
// trials of one chunk for incremental level updates) are indexed by
// TrialContext::worker; they are sound as long as the cached state
// cannot change a trial's *result* — the oracle qualifies because its
// table is always bit-identical to a from-scratch recomputation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"

namespace slcube::exp {

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Counter-based substream: the generator for trial `trial` of stream
/// `stream` under `seed`. A pure function of its arguments — the heart
/// of the any-thread-count determinism guarantee.
[[nodiscard]] constexpr Xoshiro256ss substream(std::uint64_t seed,
                                               std::uint64_t stream,
                                               std::uint64_t trial) noexcept {
  std::uint64_t h = seed;
  h = mix64(h ^ (0x9e3779b97f4a7c15ull * (stream + 1)));
  h = mix64(h ^ (0xbf58476d1ce4e5b9ull * (trial + 1)));
  return Xoshiro256ss(h);
}

struct EngineOptions {
  /// Worker threads; 0 = one per hardware thread, 1 = serial.
  unsigned threads = 0;
  std::uint64_t seed = 0x5EED0A11;
  /// Write metrics into this registry instead of an engine-owned one
  /// (telemetry drivers share one registry across engine and workload).
  /// Non-owning; must outlive the engine.
  obs::Registry* registry = nullptr;
  /// When set, workers run with this profiler installed and the engine
  /// marks "trial" / "engine.rng" stages. Null = no per-trial profiling
  /// work at all (the loop doesn't even check per trial).
  obs::Profiler* profiler = nullptr;
};

/// Wall-clock profile of one map() call (same shape as the sweep timing
/// the drivers report): wall time, busy-worker utilization, per-trial
/// latency histogram.
struct EngineTiming {
  double wall_ms = 0.0;
  double utilization = 0.0;  ///< busy worker time / (wall * workers)
  obs::HistogramData trial_latency_us;
};

/// 1µs .. ~34s in doubling buckets — wide enough for any trial we run.
[[nodiscard]] std::vector<double> trial_latency_bounds();

struct TrialContext {
  std::size_t trial = 0;   ///< global trial index within the map() call
  std::size_t worker = 0;  ///< worker slot in [0, workers()); stable for
                           ///< the whole chunk — index worker caches by it
  Xoshiro256ss rng;        ///< this trial's private substream
};

class SweepEngine {
 public:
  explicit SweepEngine(EngineOptions options = {});

  [[nodiscard]] std::size_t workers() const noexcept { return pool_.size(); }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  /// The engine's sharded metrics registry (or the external one from
  /// EngineOptions::registry). Counters registered here can be
  /// incremented freely from trial bodies; scrape() merges shards.
  [[nodiscard]] obs::Registry& metrics() noexcept { return *registry_; }

  /// Run trials 0..trials-1 of substream family `stream` through `body`
  /// (signature R(TrialContext&)) and return the results in trial order.
  /// R must be default-constructible and movable. The same (seed, stream,
  /// trials, body) always produces the same vector, at any worker count.
  /// `trial_offset` shifts the substream (and TrialContext::trial) by a
  /// constant, so a driver can split one logical run into batches —
  /// taking a telemetry tick between them — without changing any trial's
  /// RNG: map(s, n, b) ≡ map(s, k, b, ..., 0) ++ map(s, n-k, b, ..., k).
  template <typename R, typename Body>
  std::vector<R> map(std::uint64_t stream, std::size_t trials, Body&& body,
                     EngineTiming* timing = nullptr,
                     std::size_t trial_offset = 0) {
    std::vector<R> out(trials);
    const std::size_t slots = std::max<std::size_t>(1, pool_.size());
    std::vector<ChunkMeta> meta(slots);
    for (ChunkMeta& m : meta) {
      m.latency = obs::HistogramData(trial_latency_bounds());
    }
    const obs::Stopwatch wall;
    parallel_for_chunks(
        pool_, trials,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          ChunkMeta& m = meta[chunk];
          const obs::Stopwatch busy;
          if (profiler_ == nullptr) {
            // The untelemetered hot path: identical to the pre-profiler
            // loop, no per-trial branching.
            for (std::size_t t = begin; t < end; ++t) {
              const obs::Stopwatch trial_clock;
              TrialContext ctx{trial_offset + t, chunk,
                               substream(seed_, stream, trial_offset + t)};
              out[t] = body(ctx);
              m.latency.observe(trial_clock.micros());
              trials_run_.inc();
            }
          } else {
            obs::ProfilerThreadGuard profiled(profiler_);
            for (std::size_t t = begin; t < end; ++t) {
              const obs::Stopwatch trial_clock;
              obs::StageScope trial_stage("trial");
              TrialContext ctx = [&] {
                obs::StageScope rng_stage("engine.rng");
                return TrialContext{
                    trial_offset + t, chunk,
                    substream(seed_, stream, trial_offset + t)};
              }();
              out[t] = body(ctx);
              m.latency.observe(trial_clock.micros());
              trials_run_.inc();
            }
          }
          m.busy_ms = busy.millis();
        });
    if (timing != nullptr) {
      timing->wall_ms = wall.millis();
      timing->trial_latency_us = obs::HistogramData(trial_latency_bounds());
      double busy_ms = 0.0;
      for (const ChunkMeta& m : meta) {
        busy_ms += m.busy_ms;
        timing->trial_latency_us.merge(m.latency);
      }
      const double capacity_ms =
          timing->wall_ms * static_cast<double>(slots);
      timing->utilization = capacity_ms > 0.0 ? busy_ms / capacity_ms : 0.0;
    }
    return out;
  }

  /// map() without materializing per-trial results — the mega-cube entry
  /// point, where a Q16+ sweep runs 10^6 trials and a std::vector<R> of
  /// per-trial tallies is pure allocator pressure. Each worker folds its
  /// chunk's results into a chunk-local Acc in ascending trial order
  /// (acc = Acc{}; merge(acc, r_t) for t = begin..end-1), and the chunk
  /// accumulators are merged left-to-right in chunk order. Chunks are
  /// contiguous ascending ranges, so the merge sequence concatenates to
  /// global trial order — the result is bit-identical at any worker
  /// count as long as (Acc, merge) is a fold homomorphism (sums, xors of
  /// per-trial mixes, min/max all qualify; an order-sensitive hash chain
  /// does not).
  template <typename Acc, typename Body, typename MergeTrial,
            typename MergeAcc>
  Acc map_fold(std::uint64_t stream, std::size_t trials, Body&& body,
               MergeTrial&& merge_trial, MergeAcc&& merge_acc,
               EngineTiming* timing = nullptr, std::size_t trial_offset = 0) {
    const std::size_t slots = std::max<std::size_t>(1, pool_.size());
    std::vector<Acc> accs(slots);
    std::vector<ChunkMeta> meta(slots);
    for (ChunkMeta& m : meta) {
      m.latency = obs::HistogramData(trial_latency_bounds());
    }
    const obs::Stopwatch wall;
    parallel_for_chunks(
        pool_, trials,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          ChunkMeta& m = meta[chunk];
          const obs::Stopwatch busy;
          for (std::size_t t = begin; t < end; ++t) {
            const obs::Stopwatch trial_clock;
            TrialContext ctx{trial_offset + t, chunk,
                             substream(seed_, stream, trial_offset + t)};
            merge_trial(accs[chunk], body(ctx));
            m.latency.observe(trial_clock.micros());
            trials_run_.inc();
          }
          m.busy_ms = busy.millis();
        });
    Acc out{};
    for (Acc& a : accs) merge_acc(out, a);
    if (timing != nullptr) {
      timing->wall_ms = wall.millis();
      timing->trial_latency_us = obs::HistogramData(trial_latency_bounds());
      double busy_ms = 0.0;
      for (const ChunkMeta& m : meta) {
        busy_ms += m.busy_ms;
        timing->trial_latency_us.merge(m.latency);
      }
      const double capacity_ms =
          timing->wall_ms * static_cast<double>(slots);
      timing->utilization = capacity_ms > 0.0 ? busy_ms / capacity_ms : 0.0;
    }
    return out;
  }

 private:
  struct ChunkMeta {
    double busy_ms = 0.0;
    obs::HistogramData latency;
  };

  ThreadPool pool_;
  std::uint64_t seed_;
  obs::Registry metrics_;     ///< declared before the handles bound to it
  obs::Registry* registry_;   ///< &metrics_ or the external override
  obs::Profiler* profiler_;   ///< null = profiling off
  obs::Counter trials_run_;   ///< "exp.trials_run"
};

/// Reduce per-trial results in trial order (the deterministic fold):
/// merge(acc, results[0]), merge(acc, results[1]), ...
template <typename Acc, typename R, typename Merge>
[[nodiscard]] Acc fold(const std::vector<R>& results, Acc acc, Merge&& merge) {
  for (const R& r : results) merge(acc, r);
  return acc;
}

}  // namespace slcube::exp
