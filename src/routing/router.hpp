// Uniform interface over every unicast routing scheme in the repository —
// the paper's safety-level algorithm and the six baselines it is compared
// against. The experiment harness (src/workload) drives Routers
// polymorphically; the hot per-scheme logic stays in each concrete class.
//
// Lifecycle: prepare() is called once per fault configuration and performs
// whatever precomputation the scheme's information model allows (GS rounds
// for safety levels, safe-node rounds for Lee-Hayes / Chiu-Wu, nothing for
// purely local schemes); route() then answers individual unicasts.
#pragma once

#include <cstdint>
#include <string_view>

#include "analysis/path.hpp"
#include "fault/fault_set.hpp"
#include "topology/hypercube.hpp"

namespace slcube::routing {

struct RouteAttempt {
  /// Message reached the destination.
  bool delivered = false;
  /// The source refused to inject the message because its information
  /// model already proves (or believes) delivery impossible. A refusal is
  /// *correct* when the destination is indeed unreachable — source-side
  /// failure detection is the paper's headline feature for disconnected
  /// cubes — and *wrong* otherwise.
  bool refused = false;
  /// The walk the message physically performed, source first; includes
  /// backtracking steps for schemes that backtrack. Partial when the
  /// message got stuck; just {source} when refused.
  analysis::Path walk;

  /// Hops physically traveled (the traffic the unicast caused).
  [[nodiscard]] std::uint64_t hops() const noexcept {
    return walk.empty() ? 0 : walk.size() - 1;
  }
};

class Router {
 public:
  virtual ~Router() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Precompute per-fault-configuration state. Must be called before
  /// route(); may be called again when the fault set changes.
  virtual void prepare(const topo::Hypercube& cube,
                       const fault::FaultSet& faults) = 0;

  /// Rounds of neighbor information exchange prepare() models — the
  /// scheme's information-gathering cost (0 for purely local schemes).
  [[nodiscard]] virtual unsigned prepare_rounds() const { return 0; }

  /// Route one unicast between healthy nodes s != d.
  [[nodiscard]] virtual RouteAttempt route(NodeId s, NodeId d) = 0;
};

}  // namespace slcube::routing
