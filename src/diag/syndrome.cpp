#include "diag/syndrome.hpp"

#include "common/contracts.hpp"

namespace slcube::diag {

const char* to_string(TestModel m) {
  switch (m) {
    case TestModel::kPmc:
      return "pmc";
    case TestModel::kMmStar:
      return "mm-star";
  }
  SLC_UNREACHABLE("bad TestModel");
}

const char* to_string(LiarPolicy p) {
  switch (p) {
    case LiarPolicy::kRandom:
      return "random";
    case LiarPolicy::kAdversarial:
      return "adversarial";
    case LiarPolicy::kAllPass:
      return "all-pass";
  }
  SLC_UNREACHABLE("bad LiarPolicy");
}

Syndrome::Syndrome(unsigned dimension, std::uint64_t num_nodes,
                   TestModel model)
    : dimension_(dimension),
      num_nodes_(num_nodes),
      model_(model),
      slots_(model == TestModel::kPmc ? dimension
                                      : dimension * (dimension - 1) / 2),
      words_((num_nodes * slots_ + 63) / 64, 0) {
  SLC_EXPECT(dimension >= 1);
}

namespace {

/// One faulty tester's verdict on a test whose truthful outcome would be
/// `truth` (PMC: the testee is faulty; MM*: the pair mismatches).
bool liar_verdict(LiarPolicy policy, bool truth, Xoshiro256ss& rng) {
  switch (policy) {
    case LiarPolicy::kRandom:
      return rng.chance(0.5);
    case LiarPolicy::kAdversarial:
      return !truth;
    case LiarPolicy::kAllPass:
      return false;
  }
  SLC_UNREACHABLE("bad LiarPolicy");
}

}  // namespace

Syndrome generate_syndrome(const topo::Hypercube& cube,
                           const fault::FaultSet& ground,
                           const SyndromeConfig& config, Xoshiro256ss& rng) {
  SLC_EXPECT(ground.num_nodes() == cube.num_nodes());
  const unsigned n = cube.dimension();
  Syndrome syn(n, cube.num_nodes(), config.model);

  for (NodeId u = 0; u < cube.num_nodes(); ++u) {
    const bool honest = ground.is_healthy(u);
    if (config.model == TestModel::kPmc) {
      for (Dim d = 0; d < n; ++d) {
        const bool truth = ground.is_faulty(cube.neighbor(u, d));
        syn.set(u, d,
                honest ? truth : liar_verdict(config.liars, truth, rng));
      }
    } else {
      for (Dim d1 = 0; d1 + 1 < n; ++d1) {
        for (Dim d2 = d1 + 1; d2 < n; ++d2) {
          const bool truth = ground.is_faulty(cube.neighbor(u, d1)) ||
                             ground.is_faulty(cube.neighbor(u, d2));
          syn.set(u, Syndrome::pair_slot(d1, d2, n),
                  honest ? truth : liar_verdict(config.liars, truth, rng));
        }
      }
    }
  }
  return syn;
}

}  // namespace slcube::diag
