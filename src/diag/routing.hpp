// slcube::diag — routing on beliefs. The router is given the DIAGNOSED
// fault picture (a decoded syndrome and its GS fixed point) and plans a
// route exactly as core::route_unicast would; the plan is then replayed
// against the GROUND truth, which is what actually kills messages. The
// gap between the two worlds is attributed to one of three misroute
// classes:
//
//  * kFalseRejectAtSource — the plan refused (or the destination was
//    presumed faulty) although the ground-truth tables offered a route.
//    Cost: a deliverable message never enters the network.
//  * kOptimismDrop — the plan walked through a missed fault; the message
//    dies mid-route at a node the diagnosis cleared. Cost: silent loss,
//    the exact failure mode the paper's source-side check exists to
//    prevent.
//  * kPessimismDetour — the plan delivered, but spent the H + 2 spare
//    detour dodging a false accusation while the ground truth had an
//    optimal route. Cost: two extra hops per message.
//
// Every diagnosed route emits a MisrouteEvent postmortem (class "none"
// included) after its route_done, so obs::AuditSink can cross-check the
// attribution stream route by route.
#pragma once

#include "core/unicast.hpp"
#include "diag/decoder.hpp"

namespace slcube::diag {

enum class MisrouteClass : std::uint8_t {
  kNone,                 ///< plan and ground truth agree
  kFalseRejectAtSource,  ///< refused a ground-deliverable message
  kOptimismDrop,         ///< dropped at a missed fault mid-route
  kPessimismDetour,      ///< H+2 detour where ground truth was optimal
};
[[nodiscard]] const char* to_string(MisrouteClass c);

/// A diagnosed-world plan plus its ground-truth outcome.
struct DiagnosedRouteResult {
  /// The route as planned over the diagnosed tables (what was traced).
  core::RouteResult planned;
  /// Ground-truth outcome of replaying the plan.
  bool delivered = false;
  bool dropped = false;
  int drop_node = -1;        ///< ground-faulty node the replay died at
  unsigned hops_taken = 0;   ///< hops actually traversed
  MisrouteClass misroute = MisrouteClass::kNone;
  /// What the ground-truth tables would have decided at the source —
  /// the referee for the false-reject and pessimism classes.
  core::SourceDecision ground_decision;
};

/// Plan s -> d over `diagnosed`/`diagnosed_levels`, replay against
/// `ground`. Both endpoints must be GROUND-healthy (a diagnosed-faulty
/// destination yields a synthesized refusal traced with the status
/// "refused-presumed-dest"). `ground_levels` must be the fixed point of
/// `ground`, `diagnosed_levels` of `diagnosed`. When `options.trace` is
/// set, the planned route is traced as usual and a MisrouteEvent follows
/// the route_done.
[[nodiscard]] DiagnosedRouteResult route_diagnosed(
    const topo::Hypercube& cube, const fault::FaultSet& ground,
    const core::SafetyLevels& ground_levels, const fault::FaultSet& diagnosed,
    const core::SafetyLevels& diagnosed_levels, NodeId s, NodeId d,
    const core::UnicastOptions& options = {});

}  // namespace slcube::diag
