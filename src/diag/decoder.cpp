#include "diag/decoder.hpp"

#include "common/contracts.hpp"

namespace slcube::diag {

namespace {

/// Accuser/clearer tallies for every node, counted over the testers that
/// `trusted` marks healthy. `trusted == nullptr` means trust everybody
/// (pass 0). For MM* during refinement, a mismatch with exactly one
/// presumed-faulty pair member is already explained and casts no vote on
/// the other member.
struct Tally {
  std::vector<std::uint32_t> accusers;
  std::vector<std::uint32_t> clearers;
};

Tally tally_votes(const topo::Hypercube& cube, const Syndrome& syn,
                  const fault::FaultSet* trusted) {
  const unsigned n = cube.dimension();
  Tally t;
  t.accusers.assign(cube.num_nodes(), 0);
  t.clearers.assign(cube.num_nodes(), 0);
  for (NodeId u = 0; u < cube.num_nodes(); ++u) {
    if (trusted != nullptr && trusted->is_faulty(u)) continue;
    if (syn.model() == TestModel::kPmc) {
      for (Dim d = 0; d < n; ++d) {
        const NodeId v = cube.neighbor(u, d);
        if (syn.test(u, d)) {
          ++t.accusers[v];
        } else {
          ++t.clearers[v];
        }
      }
    } else {
      for (Dim d1 = 0; d1 + 1 < n; ++d1) {
        for (Dim d2 = d1 + 1; d2 < n; ++d2) {
          const NodeId v = cube.neighbor(u, d1);
          const NodeId w = cube.neighbor(u, d2);
          const bool mismatch = syn.test(u, Syndrome::pair_slot(d1, d2, n));
          if (!mismatch) {
            // A clean comparison clears both members outright.
            ++t.clearers[v];
            ++t.clearers[w];
            continue;
          }
          if (trusted != nullptr) {
            const bool v_bad = trusted->is_faulty(v);
            const bool w_bad = trusted->is_faulty(w);
            if (v_bad != w_bad) continue;  // mismatch already explained
          }
          ++t.accusers[v];
          ++t.accusers[w];
        }
      }
    }
  }
  return t;
}

/// Fold a tally into verdicts. A node nobody voted on keeps `prior`.
fault::FaultSet verdicts(const topo::Hypercube& cube, const Tally& t,
                         TiePolicy ties, const fault::FaultSet* prior) {
  fault::FaultSet presumed(cube.num_nodes());
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    const std::uint32_t acc = t.accusers[a];
    const std::uint32_t clr = t.clearers[a];
    bool faulty;
    if (acc == 0 && clr == 0) {
      faulty = prior != nullptr && prior->is_faulty(a);
    } else if (acc != clr) {
      faulty = acc > clr;
    } else {
      faulty = ties == TiePolicy::kTrustAccusation;
    }
    if (faulty) presumed.mark_faulty(a);
  }
  return presumed;
}

}  // namespace

fault::FaultSet decode_syndrome(const topo::Hypercube& cube,
                                const Syndrome& syndrome,
                                const DecoderConfig& config) {
  SLC_EXPECT(syndrome.num_nodes() == cube.num_nodes() &&
             syndrome.dimension() == cube.dimension());
  // Pass 0: trust every tester equally.
  fault::FaultSet presumed =
      verdicts(cube, tally_votes(cube, syndrome, nullptr), config.ties,
               nullptr);
  for (unsigned pass = 0; pass < config.refinement_passes; ++pass) {
    fault::FaultSet next =
        verdicts(cube, tally_votes(cube, syndrome, &presumed), config.ties,
                 &presumed);
    if (next == presumed) break;  // fixed point
    presumed = std::move(next);
  }
  return presumed;
}

Diagnosis diagnose(const topo::Hypercube& cube, const fault::FaultSet& ground,
                   const SyndromeConfig& syndrome_config,
                   const DecoderConfig& decoder_config, Xoshiro256ss& rng) {
  const Syndrome syn = generate_syndrome(cube, ground, syndrome_config, rng);
  Diagnosis d{decode_syndrome(cube, syn, decoder_config), {}, {}};
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (ground.is_faulty(a) && d.presumed.is_healthy(a)) {
      d.missed.push_back(a);
    } else if (ground.is_healthy(a) && d.presumed.is_faulty(a)) {
      d.false_accusations.push_back(a);
    }
  }
  return d;
}

}  // namespace slcube::diag
