// slcube::diag — system-level diagnosis syndromes. Everything upstream
// of this directory assumes the paper's assumption 2: node faults are
// perfectly diagnosed by neighbors. This layer drops that assumption and
// models where the fault picture actually comes from: each node tests
// its neighbors and the test OUTCOMES — not the ground truth — are all
// the system ever sees.
//
// Two classical test models:
//
//  * PMC (Preparata–Metze–Chien): node u tests each neighbor v directly.
//    A healthy tester reports v's true status; a FAULTY tester's report
//    is arbitrary — here governed by a LiarPolicy.
//  * MM* (Maeng–Malek comparison model): node u sends the same task to
//    each pair of distinct neighbors (v, w) and compares their
//    responses. A healthy comparator reports a mismatch iff at least
//    one of v, w is faulty; a faulty comparator's verdict is arbitrary.
//
// A Syndrome stores one bit per (tester, slot): the accusation bit for
// PMC (slot = dimension of the tested neighbor) or the mismatch bit for
// MM* (slot = index of the unordered dimension pair). The decoder
// (decoder.hpp) turns a syndrome into a presumed fault::FaultSet.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_set.hpp"
#include "topology/hypercube.hpp"

namespace slcube::diag {

enum class TestModel : std::uint8_t {
  kPmc,     ///< direct neighbor tests
  kMmStar,  ///< pairwise comparison tests
};
[[nodiscard]] const char* to_string(TestModel m);

/// What a faulty tester reports. Healthy testers always tell the truth;
/// the policy only governs the liars.
enum class LiarPolicy : std::uint8_t {
  kRandom,       ///< each verdict is an independent coin flip
  kAdversarial,  ///< accuse the healthy, clear the faulty (worst case)
  kAllPass,      ///< every test passes (a silently-wedged tester)
};
[[nodiscard]] const char* to_string(LiarPolicy p);

struct SyndromeConfig {
  TestModel model = TestModel::kPmc;
  LiarPolicy liars = LiarPolicy::kRandom;
};

/// One bit per (tester, slot). For PMC the slot is the dimension of the
/// tested neighbor and a set bit is an accusation; for MM* the slot
/// indexes the unordered dimension pair (d1 < d2) of the compared
/// neighbors and a set bit is a mismatch verdict.
class Syndrome {
 public:
  Syndrome(unsigned dimension, std::uint64_t num_nodes, TestModel model);

  [[nodiscard]] TestModel model() const noexcept { return model_; }
  [[nodiscard]] unsigned dimension() const noexcept { return dimension_; }
  [[nodiscard]] std::uint64_t num_nodes() const noexcept { return num_nodes_; }
  /// n for PMC, n(n-1)/2 for MM*.
  [[nodiscard]] unsigned slots_per_node() const noexcept { return slots_; }

  [[nodiscard]] bool test(NodeId tester, unsigned slot) const noexcept {
    SLC_ASSERT(tester < num_nodes_ && slot < slots_);
    const std::uint64_t bit = tester * slots_ + slot;
    return (words_[bit >> 6] >> (bit & 63)) & 1u;
  }

  void set(NodeId tester, unsigned slot, bool positive) noexcept {
    SLC_ASSERT(tester < num_nodes_ && slot < slots_);
    const std::uint64_t bit = tester * slots_ + slot;
    const std::uint64_t mask = std::uint64_t{1} << (bit & 63);
    if (positive) {
      words_[bit >> 6] |= mask;
    } else {
      words_[bit >> 6] &= ~mask;
    }
  }

  /// The MM* slot of the unordered pair d1 < d2 in lexicographic order.
  [[nodiscard]] static unsigned pair_slot(unsigned d1, unsigned d2,
                                          unsigned n) noexcept {
    SLC_ASSERT(d1 < d2 && d2 < n);
    return d1 * n - d1 * (d1 + 1) / 2 + (d2 - d1 - 1);
  }

 private:
  unsigned dimension_;
  std::uint64_t num_nodes_;
  TestModel model_;
  unsigned slots_;
  std::vector<std::uint64_t> words_;
};

/// Run every test of the configured model against `ground`. Healthy
/// testers report the truth of the model; faulty testers answer per the
/// liar policy (kRandom draws its coins from `rng` in fixed tester/slot
/// order, so the syndrome is a deterministic function of its inputs).
[[nodiscard]] Syndrome generate_syndrome(const topo::Hypercube& cube,
                                         const fault::FaultSet& ground,
                                         const SyndromeConfig& config,
                                         Xoshiro256ss& rng);

}  // namespace slcube::diag
