// slcube::diag — syndrome decoding: from test verdicts to a presumed
// fault::FaultSet. The decoder is a deliberately simple iterated
// majority vote, because the point of this layer is not an optimal
// diagnosis algorithm but a REALISTIC one — its failure modes are the
// scenarios the diagnosed-routing experiments measure:
//
//  * Missed faults: a faulty node whose faulty neighbors outnumber its
//    healthy ones can be cleared by its accomplices (e.g. the interior
//    of an inject_subcube fault with k > n/2 under kAllPass liars).
//    Routing then treats a dead node as alive — the optimism-drop.
//  * False accusations: a healthy node mobbed by adversarial faulty
//    testers is voted faulty (e.g. the inject_isolation victim, all of
//    whose testers lie). Routing then detours around — or refuses for —
//    a perfectly good node: the pessimism-detour / false-reject.
//
// Both are impossible below the PMC diagnosability bound (Q_n is
// n-diagnosable) for an OPTIMAL decoder; the majority decoder trades a
// little of that bound for locality, and the experiments quantify what
// the trade costs end-to-end. A single fault is always diagnosed
// exactly (its n honest accusers are unanimous), which anchors tests.
#pragma once

#include "diag/syndrome.hpp"
#include "fault/fault_set.hpp"

namespace slcube::diag {

/// What to presume when a node's accusers and clearers tie.
enum class TiePolicy : std::uint8_t {
  kBenefitOfDoubt,    ///< presume healthy (optimistic)
  kTrustAccusation,   ///< presume faulty (pessimistic)
};

struct DecoderConfig {
  TiePolicy ties = TiePolicy::kBenefitOfDoubt;
  /// Majority passes after the trust-everyone pass 0: each refinement
  /// recounts with only currently-presumed-healthy testers (and, for
  /// MM*, discounts mismatches already explained by a presumed-faulty
  /// member). A node no trusted tester covers keeps its prior verdict.
  unsigned refinement_passes = 1;
};

/// Decode a syndrome into the presumed fault set.
[[nodiscard]] fault::FaultSet decode_syndrome(const topo::Hypercube& cube,
                                              const Syndrome& syndrome,
                                              const DecoderConfig& config = {});

/// A diagnosis round-trip next to its ground truth, for experiments.
struct Diagnosis {
  fault::FaultSet presumed;
  std::vector<NodeId> missed;             ///< ground-faulty, presumed healthy
  std::vector<NodeId> false_accusations;  ///< ground-healthy, presumed faulty
  [[nodiscard]] bool exact() const noexcept {
    return missed.empty() && false_accusations.empty();
  }
};

/// generate_syndrome + decode_syndrome + classification vs the ground
/// truth, in one deterministic call.
[[nodiscard]] Diagnosis diagnose(const topo::Hypercube& cube,
                                 const fault::FaultSet& ground,
                                 const SyndromeConfig& syndrome_config,
                                 const DecoderConfig& decoder_config,
                                 Xoshiro256ss& rng);

}  // namespace slcube::diag
