#include "diag/routing.hpp"

#include "common/contracts.hpp"

namespace slcube::diag {

const char* to_string(MisrouteClass c) {
  switch (c) {
    case MisrouteClass::kNone:
      return "none";
    case MisrouteClass::kFalseRejectAtSource:
      return "false-reject-source";
    case MisrouteClass::kOptimismDrop:
      return "optimism-drop";
    case MisrouteClass::kPessimismDetour:
      return "pessimism-detour";
  }
  SLC_UNREACHABLE("bad MisrouteClass");
}

namespace {

MisrouteClass classify(const DiagnosedRouteResult& r) {
  if (r.planned.status == core::RouteStatus::kSourceRefused) {
    return r.ground_decision.feasible() ? MisrouteClass::kFalseRejectAtSource
                                        : MisrouteClass::kNone;
  }
  if (r.dropped) return MisrouteClass::kOptimismDrop;
  if (r.planned.status == core::RouteStatus::kStuck) {
    // A consistent diagnosed table cannot get stuck (Theorem 2); treat a
    // stuck plan that survived replay as over-caution, defensively.
    return MisrouteClass::kPessimismDetour;
  }
  if (r.planned.status == core::RouteStatus::kDeliveredSuboptimal &&
      r.ground_decision.optimal_feasible()) {
    return MisrouteClass::kPessimismDetour;
  }
  return MisrouteClass::kNone;
}

}  // namespace

DiagnosedRouteResult route_diagnosed(const topo::Hypercube& cube,
                                     const fault::FaultSet& ground,
                                     const core::SafetyLevels& ground_levels,
                                     const fault::FaultSet& diagnosed,
                                     const core::SafetyLevels& diagnosed_levels,
                                     NodeId s, NodeId d,
                                     const core::UnicastOptions& options) {
  SLC_EXPECT_MSG(ground.is_healthy(s) && ground.is_healthy(d),
                 "diagnosed route endpoints must be ground-healthy");
  DiagnosedRouteResult r;
  r.ground_decision = core::decide_at_source(cube, ground_levels, s, d);

  if (diagnosed.is_faulty(d)) {
    // The system believes the destination is dead: no source decision is
    // even attempted. Synthesize the refusal (and trace it under a
    // status of its own — the audit invariants for "source-refused"
    // assume the C1/C2/C3 machinery actually ran).
    r.planned.status = core::RouteStatus::kSourceRefused;
    r.planned.decision.hamming =
        bits::popcount(static_cast<std::uint32_t>(s ^ d));
    r.planned.path = {s};
    if (options.trace != nullptr) {
      obs::SourceDecisionEvent src;
      src.source = s;
      src.dest = d;
      src.hamming = r.planned.decision.hamming;
      options.trace->on_event(src);
      obs::RouteDoneEvent done;
      done.source = s;
      done.dest = d;
      done.status = "refused-presumed-dest";
      done.hops = 0;
      options.trace->on_event(done);
    }
  } else {
    // Plan on the diagnosed tables. `ground` is passed as the fault set
    // because route_unicast consults it only for its endpoint healthiness
    // contract — every forwarding decision reads the level table, which
    // is the diagnosed one.
    r.planned =
        core::route_unicast(cube, ground, diagnosed_levels, s, d, options);
  }

  // Replay the plan against the ground truth: the message dies on
  // arrival at the first ground-faulty node.
  r.hops_taken = r.planned.hops();
  for (std::size_t i = 1; i < r.planned.path.size(); ++i) {
    if (ground.is_faulty(r.planned.path[i])) {
      r.dropped = true;
      r.drop_node = static_cast<int>(r.planned.path[i]);
      r.hops_taken = static_cast<unsigned>(i);
      break;
    }
  }
  r.delivered = r.planned.delivered() && !r.dropped;
  r.misroute = classify(r);

  if (options.trace != nullptr) {
    obs::MisrouteEvent ev;
    ev.source = s;
    ev.dest = d;
    ev.cls = to_string(r.misroute);
    ev.drop_node = r.drop_node;
    ev.hops_taken = r.hops_taken;
    ev.ground_feasible = r.ground_decision.feasible();
    options.trace->on_event(ev);
  }
  return r;
}

}  // namespace slcube::diag
