// The paper's worked examples, encoded as reusable scenarios. Tests pin
// every value the prose states; benches replay the figures and print
// paper-vs-measured.
//
// Erratum notes (see DESIGN.md "Paper errata"):
//  * fig4(): the figure's fault placement is only partially recoverable
//    from the prose. The set used here — faulty nodes {0000, 0101, 1100,
//    1110} plus faulty link (1000, 1001) — was derived by hand and
//    verified to satisfy *every* stated fact: S_self(1000) = 1,
//    S_self(1001) = 2, S(1111) = 4, C1/C2 fail and C3 holds at 1101 for
//    destination 1000, and the produced route is exactly
//    1101 -> 1111 -> 1011 -> 1010 -> 1000. test_scenarios.cpp re-verifies
//    all of this and also runs an exhaustive search showing such sets
//    exist.
//  * fig5(): the prose forces the fault set {011, 100, 111, 120} (every
//    other node is stated or implied nonfaulty). Under Definition 4 the
//    fixed point then gives FIVE 3-safe nodes (000, 001, 010, 020, 021),
//    not the four the paper states, and S(001) = 3, not the stated 1.
//    Theorem 2' (the normative property) holds for our values and is
//    property-tested; we treat the figure annotation as a slip.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_set.hpp"
#include "fault/link_fault_set.hpp"
#include "topology/generalized_hypercube.hpp"
#include "topology/hypercube.hpp"

namespace slcube::fault::scenario {

/// A hypercube scenario: topology + node faults (+ optional link faults)
/// + the safety levels the paper states (level 0xFF = not stated).
struct CubeScenario {
  topo::Hypercube cube;
  FaultSet faults;
  LinkFaultSet link_faults;
  /// expected_level[a] = paper-stated safety level of node a, or kUnstated.
  std::vector<std::uint8_t> expected_levels;
  static constexpr std::uint8_t kUnstated = 0xFF;
};

/// Fig. 1: Q4 with faulty nodes {0011, 0100, 0110, 1001}. The paper states
/// levels for every node (we derived the full fixed point; the prose pins
/// 0001/0010/0111/1011 = 1, 0000/0101 = 2, and the level-4 nodes used in
/// the routing walk-throughs).
[[nodiscard]] CubeScenario fig1();

/// Fig. 3: disconnected Q4 with faulty nodes {0110, 1010, 1100, 1111};
/// node 1110 is isolated.
[[nodiscard]] CubeScenario fig3();

/// Section 2.3 safe-node comparison: Q4 with faults {0000, 0110, 1111}.
[[nodiscard]] CubeScenario sec23();

/// Section 2.3 Property-2 example: Q4 with faults {0000, 0110, 1101}.
[[nodiscard]] CubeScenario property2_example();

/// Fig. 4 (Section 4.1): Q4 with four faulty nodes and one faulty link —
/// see erratum note above for how the fault set was fixed.
[[nodiscard]] CubeScenario fig4();

/// A generalized-hypercube scenario for Fig. 5.
struct GhScenario {
  topo::GeneralizedHypercube gh;
  FaultSet faults;
};

/// Fig. 5 (Section 4.2): the 2x3x2 GH with faults {011, 100, 111, 120}
/// (coordinates written a2 a1 a0 as in the paper).
[[nodiscard]] GhScenario fig5();

}  // namespace slcube::fault::scenario
