#include "fault/scenario.hpp"

#include "common/format.hpp"

namespace slcube::fault::scenario {

namespace {

constexpr std::uint8_t U = CubeScenario::kUnstated;

NodeId b(const char* s) { return from_bits(s); }

}  // namespace

CubeScenario fig1() {
  topo::Hypercube q(4);
  FaultSet f(q.num_nodes(),
             {b("0011"), b("0100"), b("0110"), b("1001")});
  // Full fixed point of Definition 1 (derived by hand, re-verified by
  // tests); faulty nodes are 0 by definition.
  std::vector<std::uint8_t> levels(16, U);
  levels[b("0000")] = 2;
  levels[b("0001")] = 1;
  levels[b("0010")] = 1;
  levels[b("0011")] = 0;  // faulty
  levels[b("0100")] = 0;  // faulty
  levels[b("0101")] = 2;
  levels[b("0110")] = 0;  // faulty
  levels[b("0111")] = 1;
  levels[b("1000")] = 4;
  levels[b("1001")] = 0;  // faulty
  levels[b("1010")] = 4;
  levels[b("1011")] = 1;
  levels[b("1100")] = 4;
  levels[b("1101")] = 4;
  levels[b("1110")] = 4;
  levels[b("1111")] = 4;
  return CubeScenario{q, std::move(f), LinkFaultSet(q), std::move(levels)};
}

CubeScenario fig3() {
  topo::Hypercube q(4);
  FaultSet f(q.num_nodes(),
             {b("0110"), b("1010"), b("1100"), b("1111")});
  std::vector<std::uint8_t> levels(16, U);
  // The prose pins S(0101) = 2, S(0111) = 1, S(0011) = 2 and both spare
  // neighbors of 0111 (0101, 0011) at 2; the rest is our derived fixed
  // point, re-verified by tests.
  levels[b("0000")] = 2;
  levels[b("0001")] = 3;
  levels[b("0010")] = 1;
  levels[b("0011")] = 2;
  levels[b("0100")] = 1;
  levels[b("0101")] = 2;
  levels[b("0110")] = 0;  // faulty
  levels[b("0111")] = 1;
  levels[b("1000")] = 1;
  levels[b("1001")] = 2;
  levels[b("1010")] = 0;  // faulty
  levels[b("1011")] = 1;
  levels[b("1100")] = 0;  // faulty
  levels[b("1101")] = 1;
  levels[b("1110")] = 1;  // isolated: all four neighbors faulty
  levels[b("1111")] = 0;  // faulty
  return CubeScenario{q, std::move(f), LinkFaultSet(q), std::move(levels)};
}

CubeScenario sec23() {
  topo::Hypercube q(4);
  FaultSet f(q.num_nodes(), {b("0000"), b("0110"), b("1111")});
  // The paper states only which nodes are *safe* (level 4) under each of
  // the three definitions; expected_levels pins the safety-level ones:
  // safe set {0001, 0011, 0101, 1000, 1001, 1010, 1011, 1100, 1101}.
  std::vector<std::uint8_t> levels(16, U);
  for (const char* s : {"0001", "0011", "0101", "1000", "1001", "1010",
                        "1011", "1100", "1101"}) {
    levels[b(s)] = 4;
  }
  levels[b("0000")] = 0;
  levels[b("0110")] = 0;
  levels[b("1111")] = 0;
  return CubeScenario{q, std::move(f), LinkFaultSet(q), std::move(levels)};
}

CubeScenario property2_example() {
  topo::Hypercube q(4);
  FaultSet f(q.num_nodes(), {b("0000"), b("0110"), b("1101")});
  return CubeScenario{q, std::move(f), LinkFaultSet(q),
                      std::vector<std::uint8_t>(16, U)};
}

CubeScenario fig4() {
  topo::Hypercube q(4);
  FaultSet f(q.num_nodes(),
             {b("0000"), b("0101"), b("1100"), b("1110")});
  LinkFaultSet lf(q);
  lf.mark_faulty(b("1000"), 0);  // the link between 1000 and 1001
  std::vector<std::uint8_t> levels(16, U);
  // Levels the prose states. 1000/1001 values are their *self-view* EGS
  // levels; everyone else treats them as faulty.
  levels[b("1000")] = 1;
  levels[b("1001")] = 2;
  levels[b("1111")] = 4;
  return CubeScenario{q, std::move(f), std::move(lf), std::move(levels)};
}

GhScenario fig5() {
  topo::GeneralizedHypercube gh({2, 3, 2});  // radices m0=2, m1=3, m2=2
  auto enc = [&gh](std::uint32_t a2, std::uint32_t a1, std::uint32_t a0) {
    return gh.encode({a0, a1, a2});
  };
  FaultSet f(gh.num_nodes());
  f.mark_faulty(enc(0, 1, 1));  // 011
  f.mark_faulty(enc(1, 0, 0));  // 100
  f.mark_faulty(enc(1, 1, 1));  // 111
  f.mark_faulty(enc(1, 2, 0));  // 120
  return GhScenario{std::move(gh), std::move(f)};
}

}  // namespace slcube::fault::scenario
