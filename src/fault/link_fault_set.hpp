// Link faults for Section 4.1 ("Hypercubes with Both Faulty Links and
// Nodes"). A hypercube link is identified by its lower endpoint and its
// dimension: the link along dimension d incident to node a connects a and
// a ⊕ e^d; we canonicalize to the endpoint whose bit d is 0.
//
// The paper assumes every nonfaulty node can distinguish an adjacent
// faulty link from an adjacent faulty node; this class is that oracle.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/bitops.hpp"
#include "common/contracts.hpp"
#include "topology/hypercube.hpp"

namespace slcube::fault {

class LinkFaultSet {
 public:
  LinkFaultSet() = default;
  explicit LinkFaultSet(topo::Hypercube cube) : cube_(cube) {}

  [[nodiscard]] const topo::Hypercube& cube() const noexcept { return cube_; }

  /// Mark the link between `a` and its dimension-`d` neighbor as faulty.
  void mark_faulty(NodeId a, Dim d) {
    keys_.insert(key(a, d));
  }

  void mark_healthy(NodeId a, Dim d) { keys_.erase(key(a, d)); }

  [[nodiscard]] bool is_faulty(NodeId a, Dim d) const {
    return keys_.contains(key(a, d));
  }

  [[nodiscard]] std::size_t count() const noexcept { return keys_.size(); }
  [[nodiscard]] bool empty() const noexcept { return keys_.empty(); }

  /// True iff node `a` has at least one adjacent faulty link — i.e. `a`
  /// belongs to the paper's set N2 (assuming `a` itself is nonfaulty).
  [[nodiscard]] bool touches(NodeId a) const {
    for (Dim d = 0; d < cube_.dimension(); ++d) {
      if (is_faulty(a, d)) return true;
    }
    return false;
  }

  /// All faulty links as (lower endpoint, dimension) pairs, sorted.
  [[nodiscard]] std::vector<std::pair<NodeId, Dim>> faulty_links() const;

 private:
  /// Canonical key: lower endpoint (bit d clear) in the high bits,
  /// dimension in the low bits.
  [[nodiscard]] std::uint64_t key(NodeId a, Dim d) const {
    SLC_EXPECT(cube_.contains(a) && d < cube_.dimension());
    const NodeId low = bits::test(a, d) ? bits::flip(a, d) : a;
    return (static_cast<std::uint64_t>(low) << 6) | d;
  }

  topo::Hypercube cube_{1};
  std::unordered_set<std::uint64_t> keys_;
};

}  // namespace slcube::fault
