// Link faults for Section 4.1 ("Hypercubes with Both Faulty Links and
// Nodes"). A hypercube link is identified by its lower endpoint and its
// dimension: the link along dimension d incident to node a connects a and
// a ⊕ e^d; we canonicalize to the endpoint whose bit d is 0.
//
// The paper assumes every nonfaulty node can distinguish an adjacent
// faulty link from an adjacent faulty node; this class is that oracle.
// There is deliberately no default constructor: a LinkFaultSet is only
// meaningful relative to one concrete cube (the canonical key encodes
// node ids and dimensions of THAT cube), and a placeholder cube would
// either trip the SLC_EXPECT in key() or silently reject every d >= 1.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/bitops.hpp"
#include "common/contracts.hpp"
#include "topology/hypercube.hpp"

namespace slcube::fault {

class LinkFaultSet {
 public:
  explicit LinkFaultSet(topo::Hypercube cube)
      : cube_(cube),
        adjacent_count_(static_cast<std::size_t>(cube.num_nodes()), 0) {}

  [[nodiscard]] const topo::Hypercube& cube() const noexcept { return cube_; }

  /// Mark the link between `a` and its dimension-`d` neighbor as faulty.
  void mark_faulty(NodeId a, Dim d) {
    if (keys_.insert(key(a, d)).second) {
      ++adjacent_count_[a];
      ++adjacent_count_[cube_.neighbor(a, d)];
    }
  }

  void mark_healthy(NodeId a, Dim d) {
    if (keys_.erase(key(a, d)) > 0) {
      --adjacent_count_[a];
      --adjacent_count_[cube_.neighbor(a, d)];
    }
  }

  [[nodiscard]] bool is_faulty(NodeId a, Dim d) const {
    return keys_.contains(key(a, d));
  }

  [[nodiscard]] std::size_t count() const noexcept { return keys_.size(); }
  [[nodiscard]] bool empty() const noexcept { return keys_.empty(); }

  /// True iff node `a` has at least one adjacent faulty link — i.e. `a`
  /// belongs to the paper's set N2 (assuming `a` itself is nonfaulty).
  /// O(1): backed by the per-node adjacent-faulty-link count, which
  /// mark_faulty/mark_healthy keep exact at both endpoints.
  [[nodiscard]] bool touches(NodeId a) const {
    SLC_ASSERT(cube_.contains(a));
    return adjacent_count_[a] != 0;
  }

  /// Number of faulty links incident to `a` (0..n).
  [[nodiscard]] unsigned adjacent_faulty(NodeId a) const {
    SLC_ASSERT(cube_.contains(a));
    return adjacent_count_[a];
  }

  /// All faulty links as (lower endpoint, dimension) pairs, sorted.
  [[nodiscard]] std::vector<std::pair<NodeId, Dim>> faulty_links() const;

 private:
  /// Canonical key: lower endpoint (bit d clear) in the high bits,
  /// dimension in the low bits.
  [[nodiscard]] std::uint64_t key(NodeId a, Dim d) const {
    SLC_EXPECT(cube_.contains(a) && d < cube_.dimension());
    const NodeId low = bits::test(a, d) ? bits::flip(a, d) : a;
    return (static_cast<std::uint64_t>(low) << 6) | d;
  }

  topo::Hypercube cube_;
  std::unordered_set<std::uint64_t> keys_;
  /// adjacent_count_[a] = faulty links incident to a; n <= 20 fits a byte.
  std::vector<std::uint8_t> adjacent_count_;
};

}  // namespace slcube::fault
