#include "fault/injection.hpp"

#include <algorithm>

namespace slcube::fault {

FaultSet inject_uniform(const topo::Hypercube& cube, std::uint64_t count,
                        Xoshiro256ss& rng) {
  SLC_EXPECT(count <= cube.num_nodes());
  FaultSet f(cube.num_nodes());
  for (const std::uint64_t a :
       sample_without_replacement(cube.num_nodes(), count, rng)) {
    f.mark_faulty(static_cast<NodeId>(a));
  }
  return f;
}

FaultSet inject_uniform_gh(const topo::GeneralizedHypercube& gh,
                           std::uint64_t count, Xoshiro256ss& rng) {
  SLC_EXPECT(count <= gh.num_nodes());
  FaultSet f(gh.num_nodes());
  for (const std::uint64_t a :
       sample_without_replacement(gh.num_nodes(), count, rng)) {
    f.mark_faulty(static_cast<NodeId>(a));
  }
  return f;
}

FaultSet inject_clustered(const topo::Hypercube& cube, std::uint64_t count,
                          Xoshiro256ss& rng) {
  SLC_EXPECT(count <= cube.num_nodes());
  FaultSet f(cube.num_nodes());
  if (count == 0) return f;
  const auto center = static_cast<NodeId>(rng.below(cube.num_nodes()));
  // Draw candidates by flipping each bit of the center independently with
  // probability 1/4; retry on duplicates. Expected Hamming distance from
  // the center is n/4, giving a tight cluster for the dimensions we use.
  while (f.count() < count) {
    NodeId a = center;
    for (Dim d = 0; d < cube.dimension(); ++d) {
      if (rng.chance(0.25)) a = bits::flip(a, d);
    }
    f.mark_faulty(a);
  }
  return f;
}

FaultSet inject_isolation(const topo::Hypercube& cube,
                          std::uint64_t extra_count, Xoshiro256ss& rng,
                          NodeId& victim_out) {
  SLC_EXPECT(cube.dimension() + extra_count <= cube.num_nodes() - 1);
  FaultSet f(cube.num_nodes());
  const auto victim = static_cast<NodeId>(rng.below(cube.num_nodes()));
  victim_out = victim;
  cube.for_each_neighbor(victim, [&](Dim, NodeId b) { f.mark_faulty(b); });
  while (f.count() < cube.dimension() + extra_count) {
    const auto a = static_cast<NodeId>(rng.below(cube.num_nodes()));
    if (a != victim) f.mark_faulty(a);
  }
  return f;
}

FaultSet inject_subcube(const topo::Hypercube& cube, unsigned k,
                        Xoshiro256ss& rng) {
  SLC_EXPECT(k <= cube.dimension());
  const unsigned n = cube.dimension();
  // Choose which k dimensions are free and a pattern for the fixed ones.
  std::vector<Dim> dims(n);
  for (Dim d = 0; d < n; ++d) dims[d] = d;
  shuffle(dims, rng);
  std::uint32_t fixed_mask = 0;
  for (unsigned i = k; i < n; ++i) fixed_mask |= bits::unit(dims[i]);
  const auto pattern =
      static_cast<std::uint32_t>(rng.below(cube.num_nodes())) & fixed_mask;

  FaultSet f(cube.num_nodes());
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if ((a & fixed_mask) == pattern) f.mark_faulty(a);
  }
  SLC_ENSURE(f.count() == (std::uint64_t{1} << k));
  return f;
}

LinkFaultSet inject_links_uniform(const topo::Hypercube& cube,
                                  std::uint64_t count, Xoshiro256ss& rng) {
  const std::uint64_t total_links =
      cube.num_nodes() * cube.dimension() / 2;
  SLC_EXPECT(count <= total_links);
  LinkFaultSet lf(cube);
  // Enumerate links as (lower endpoint index among nodes with bit d clear).
  while (lf.count() < count) {
    const auto a = static_cast<NodeId>(rng.below(cube.num_nodes()));
    const auto d = static_cast<Dim>(rng.below(cube.dimension()));
    lf.mark_faulty(a, d);
  }
  return lf;
}

}  // namespace slcube::fault
