#include "fault/injection.hpp"

#include <algorithm>

namespace slcube::fault {

FaultSet inject_uniform(const topo::Hypercube& cube, std::uint64_t count,
                        Xoshiro256ss& rng) {
  SLC_EXPECT(count <= cube.num_nodes());
  FaultSet f(cube.num_nodes());
  for (const std::uint64_t a :
       sample_without_replacement(cube.num_nodes(), count, rng)) {
    f.mark_faulty(static_cast<NodeId>(a));
  }
  return f;
}

FaultSet inject_uniform_gh(const topo::GeneralizedHypercube& gh,
                           std::uint64_t count, Xoshiro256ss& rng) {
  SLC_EXPECT(count <= gh.num_nodes());
  FaultSet f(gh.num_nodes());
  for (const std::uint64_t a :
       sample_without_replacement(gh.num_nodes(), count, rng)) {
    f.mark_faulty(static_cast<NodeId>(a));
  }
  return f;
}

FaultSet inject_clustered(const topo::Hypercube& cube, std::uint64_t count,
                          Xoshiro256ss& rng) {
  SLC_EXPECT(count <= cube.num_nodes());
  FaultSet f(cube.num_nodes());
  if (count == 0) return f;
  const auto center = static_cast<NodeId>(rng.below(cube.num_nodes()));
  // Draw candidates by flipping each bit of the center independently with
  // probability 1/4; retry on duplicates. Expected Hamming distance from
  // the center is n/4, giving a tight cluster for the dimensions we use.
  // The rejection sampler stalls when count approaches num_nodes(): a
  // node at distance k from the center is proposed with probability
  // (1/4)^k (3/4)^(n-k), so once the cluster core is exhausted the far
  // nodes take ~4^n draws each. Cap the attempts and fill the remainder
  // uniformly over the still-healthy nodes — by then the cluster shape
  // is set and the tail is noise anyway.
  const std::uint64_t max_attempts = 64 * count + 1024;
  for (std::uint64_t attempts = 0; f.count() < count && attempts < max_attempts;
       ++attempts) {
    NodeId a = center;
    for (Dim d = 0; d < cube.dimension(); ++d) {
      if (rng.chance(0.25)) a = bits::flip(a, d);
    }
    f.mark_faulty(a);
  }
  if (f.count() < count) {
    const auto healthy = f.healthy_nodes();
    for (const std::uint64_t i : sample_without_replacement(
             healthy.size(), count - f.count(), rng)) {
      f.mark_faulty(healthy[i]);
    }
  }
  SLC_ENSURE(f.count() == count);
  return f;
}

FaultSet inject_isolation(const topo::Hypercube& cube,
                          std::uint64_t extra_count, Xoshiro256ss& rng,
                          NodeId& victim_out) {
  SLC_EXPECT(cube.dimension() + extra_count <= cube.num_nodes() - 1);
  FaultSet f(cube.num_nodes());
  const auto victim = static_cast<NodeId>(rng.below(cube.num_nodes()));
  victim_out = victim;
  cube.for_each_neighbor(victim, [&](Dim, NodeId b) { f.mark_faulty(b); });
  while (f.count() < cube.dimension() + extra_count) {
    const auto a = static_cast<NodeId>(rng.below(cube.num_nodes()));
    if (a != victim) f.mark_faulty(a);
  }
  return f;
}

FaultSet inject_subcube(const topo::Hypercube& cube, unsigned k,
                        Xoshiro256ss& rng) {
  SLC_EXPECT(k <= cube.dimension());
  const unsigned n = cube.dimension();
  // Choose which k dimensions are free and a pattern for the fixed ones.
  std::vector<Dim> dims(n);
  for (Dim d = 0; d < n; ++d) dims[d] = d;
  shuffle(dims, rng);
  std::uint32_t fixed_mask = 0;
  for (unsigned i = k; i < n; ++i) fixed_mask |= bits::unit(dims[i]);
  const auto pattern =
      static_cast<std::uint32_t>(rng.below(cube.num_nodes())) & fixed_mask;

  FaultSet f(cube.num_nodes());
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if ((a & fixed_mask) == pattern) f.mark_faulty(a);
  }
  SLC_ENSURE(f.count() == (std::uint64_t{1} << k));
  return f;
}

FaultSet inject_star(const topo::Hypercube& cube, unsigned leaves,
                     Xoshiro256ss& rng, NodeId* center_out) {
  SLC_EXPECT(leaves <= cube.dimension());
  const auto center = static_cast<NodeId>(rng.below(cube.num_nodes()));
  if (center_out != nullptr) *center_out = center;
  std::vector<Dim> dims(cube.dimension());
  for (Dim d = 0; d < cube.dimension(); ++d) dims[d] = d;
  shuffle(dims, rng);

  FaultSet f(cube.num_nodes());
  f.mark_faulty(center);
  for (unsigned i = 0; i < leaves; ++i) {
    f.mark_faulty(bits::flip(center, dims[i]));
  }
  SLC_ENSURE(f.count() == std::uint64_t{leaves} + 1);
  return f;
}

FaultSet inject_path(const topo::Hypercube& cube, std::uint64_t length,
                     Xoshiro256ss& rng, std::vector<NodeId>* path_out) {
  SLC_EXPECT(length <= cube.num_nodes());
  const auto start = static_cast<NodeId>(rng.below(cube.num_nodes()));
  std::vector<Dim> dims(cube.dimension());
  for (Dim d = 0; d < cube.dimension(); ++d) dims[d] = d;
  shuffle(dims, rng);

  FaultSet f(cube.num_nodes());
  if (path_out != nullptr) path_out->clear();
  for (std::uint64_t i = 0; i < length; ++i) {
    // Node i = start XOR the Gray code of i, with Gray bit j routed to
    // the shuffled dimension dims[j].
    const std::uint64_t gray = i ^ (i >> 1);
    NodeId a = start;
    for (Dim j = 0; j < cube.dimension(); ++j) {
      if ((gray >> j) & 1u) a = bits::flip(a, dims[j]);
    }
    f.mark_faulty(a);
    if (path_out != nullptr) path_out->push_back(a);
  }
  SLC_ENSURE(f.count() == length);
  return f;
}

LinkFaultSet inject_links_uniform(const topo::Hypercube& cube,
                                  std::uint64_t count, Xoshiro256ss& rng) {
  const std::uint64_t total_links =
      cube.num_nodes() * cube.dimension() / 2;
  SLC_EXPECT(count <= total_links);
  LinkFaultSet lf(cube);
  // Enumerate links as (lower endpoint index among nodes with bit d clear).
  while (lf.count() < count) {
    const auto a = static_cast<NodeId>(rng.below(cube.num_nodes()));
    const auto d = static_cast<Dim>(rng.below(cube.dimension()));
    lf.mark_faulty(a, d);
  }
  return lf;
}

}  // namespace slcube::fault
