#include "fault/link_fault_set.hpp"

#include <algorithm>

namespace slcube::fault {

std::vector<std::pair<NodeId, Dim>> LinkFaultSet::faulty_links() const {
  std::vector<std::pair<NodeId, Dim>> out;
  out.reserve(keys_.size());
  for (const std::uint64_t k : keys_) {
    out.emplace_back(static_cast<NodeId>(k >> 6),
                     static_cast<Dim>(k & 63));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace slcube::fault
