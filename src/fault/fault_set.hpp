// The node-fault model of the paper: fail-stop node faults (assumption 1),
// perfectly diagnosed by neighbors (assumption 2). A FaultSet is a dense
// bitset over node ids with O(1) query/update and O(N/64) iteration.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/contracts.hpp"

namespace slcube::fault {

class FaultSet {
 public:
  FaultSet() = default;

  explicit FaultSet(std::uint64_t num_nodes)
      : num_nodes_(num_nodes), words_((num_nodes + 63) / 64, 0) {}

  /// Construct with an initial list of faulty nodes.
  FaultSet(std::uint64_t num_nodes, std::initializer_list<NodeId> faulty)
      : FaultSet(num_nodes) {
    for (NodeId a : faulty) mark_faulty(a);
  }

  [[nodiscard]] std::uint64_t num_nodes() const noexcept { return num_nodes_; }

  [[nodiscard]] bool is_faulty(NodeId a) const noexcept {
    SLC_ASSERT(a < num_nodes_);
    return (words_[a >> 6] >> (a & 63)) & 1u;
  }
  [[nodiscard]] bool is_healthy(NodeId a) const noexcept {
    return !is_faulty(a);
  }

  void mark_faulty(NodeId a) noexcept {
    SLC_ASSERT(a < num_nodes_);
    std::uint64_t& w = words_[a >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (a & 63);
    count_ += (w & bit) ? 0u : 1u;
    w |= bit;
  }

  /// A previously faulty node recovers (Section 2.2 discusses recovery).
  void mark_healthy(NodeId a) noexcept {
    SLC_ASSERT(a < num_nodes_);
    std::uint64_t& w = words_[a >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (a & 63);
    count_ -= (w & bit) ? 1u : 0u;
    w &= ~bit;
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
    count_ = 0;
  }

  /// Number of faulty nodes.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t healthy_count() const noexcept {
    return num_nodes_ - count_;
  }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Ids of all faulty nodes, ascending.
  [[nodiscard]] std::vector<NodeId> faulty_nodes() const;
  /// Ids of all healthy nodes, ascending.
  [[nodiscard]] std::vector<NodeId> healthy_nodes() const;

  /// Call f(node) for every faulty node, ascending — the allocation-free
  /// form of faulty_nodes() for per-trial hot paths (O(N/64) scan).
  template <typename F>
  void for_each_faulty(F&& f) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      bits::for_each_set64(words_[w], [&](unsigned b) {
        f(static_cast<NodeId>(w * 64 + b));
      });
    }
  }

  /// The backing bitset words (64 nodes per word, node a in word a/64 bit
  /// a%64). Word-at-a-time consumers (symmetric-difference scans in
  /// SafetyOracle::retarget) read these directly.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

  friend bool operator==(const FaultSet&, const FaultSet&) = default;

 private:
  std::uint64_t num_nodes_ = 0;
  std::uint64_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace slcube::fault
