#include "fault/fault_set.hpp"

namespace slcube::fault {

std::vector<NodeId> FaultSet::faulty_nodes() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(count_));
  for (std::uint64_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const auto bit = static_cast<unsigned>(std::countr_zero(word));
      out.push_back(static_cast<NodeId>((w << 6) + bit));
      word &= word - 1;
    }
  }
  return out;
}

std::vector<NodeId> FaultSet::healthy_nodes() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(healthy_count()));
  for (NodeId a = 0; a < num_nodes_; ++a) {
    if (is_healthy(a)) out.push_back(a);
  }
  return out;
}

}  // namespace slcube::fault
