// Fault-injection strategies for the experiment harness.
//
// The paper's Fig. 2 simulation places faults uniformly at random; the
// additional generators here stress the algorithm where it is weakest:
// clustered faults deplete safety levels locally, isolation faults
// manufacture disconnected hypercubes (Section 3.3), and subcube faults
// model a failed board/rack.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_set.hpp"
#include "fault/link_fault_set.hpp"
#include "topology/generalized_hypercube.hpp"
#include "topology/hypercube.hpp"

namespace slcube::fault {

/// `count` faulty nodes uniformly at random (without replacement).
[[nodiscard]] FaultSet inject_uniform(const topo::Hypercube& cube,
                                      std::uint64_t count, Xoshiro256ss& rng);

/// Uniform node faults in a generalized hypercube.
[[nodiscard]] FaultSet inject_uniform_gh(const topo::GeneralizedHypercube& gh,
                                         std::uint64_t count,
                                         Xoshiro256ss& rng);

/// `count` faults clustered around a random center: faults are drawn with
/// probability proportional to 2^-H(center, a) (exponential decay in
/// Hamming distance), which concentrates damage in one region of the cube.
[[nodiscard]] FaultSet inject_clustered(const topo::Hypercube& cube,
                                        std::uint64_t count,
                                        Xoshiro256ss& rng);

/// Disconnect the cube by surrounding a random victim node with faults:
/// all n neighbors of the victim become faulty, then any remaining budget
/// is spent uniformly on other nodes. The victim itself stays healthy, so
/// the healthy subgraph has >= 2 components whenever n < 2^n - 1.
/// Returns the fault set; `victim_out` receives the isolated node.
[[nodiscard]] FaultSet inject_isolation(const topo::Hypercube& cube,
                                        std::uint64_t extra_count,
                                        Xoshiro256ss& rng, NodeId& victim_out);

/// Fail an entire k-dimensional subcube: nodes matching a random pattern
/// on n-k fixed dimensions. Models a failed board / power domain.
[[nodiscard]] FaultSet inject_subcube(const topo::Hypercube& cube, unsigned k,
                                      Xoshiro256ss& rng);

/// Star fault K_{1,leaves}: a random center plus `leaves` (<= n) of its
/// neighbors fail together — a node that took its ports down with it.
/// Postconditions: count == leaves + 1, every leaf adjacent to the
/// center. `center_out` (optional) receives the center node.
[[nodiscard]] FaultSet inject_star(const topo::Hypercube& cube, unsigned leaves,
                                   Xoshiro256ss& rng,
                                   NodeId* center_out = nullptr);

/// Path fault: `length` nodes forming one simple path (consecutive nodes
/// adjacent) — a cable run or daisy-chained power feed failing end to
/// end. Built as a reflected-Gray-code walk from a random start along a
/// random permutation of dimensions: consecutive codes differ in one
/// bit, and all codes below 2^n are distinct, so the walk is a simple
/// path for any length <= 2^n with no rejection sampling. `path_out`
/// (optional) receives the nodes in walk order.
[[nodiscard]] FaultSet inject_path(const topo::Hypercube& cube,
                                   std::uint64_t length, Xoshiro256ss& rng,
                                   std::vector<NodeId>* path_out = nullptr);

/// `count` faulty links uniformly at random (node set untouched).
[[nodiscard]] LinkFaultSet inject_links_uniform(const topo::Hypercube& cube,
                                                std::uint64_t count,
                                                Xoshiro256ss& rng);

}  // namespace slcube::fault
