// Fault-injection strategies for the experiment harness.
//
// The paper's Fig. 2 simulation places faults uniformly at random; the
// additional generators here stress the algorithm where it is weakest:
// clustered faults deplete safety levels locally, isolation faults
// manufacture disconnected hypercubes (Section 3.3), and subcube faults
// model a failed board/rack.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_set.hpp"
#include "fault/link_fault_set.hpp"
#include "topology/generalized_hypercube.hpp"
#include "topology/hypercube.hpp"

namespace slcube::fault {

/// `count` faulty nodes uniformly at random (without replacement).
[[nodiscard]] FaultSet inject_uniform(const topo::Hypercube& cube,
                                      std::uint64_t count, Xoshiro256ss& rng);

/// Uniform node faults in a generalized hypercube.
[[nodiscard]] FaultSet inject_uniform_gh(const topo::GeneralizedHypercube& gh,
                                         std::uint64_t count,
                                         Xoshiro256ss& rng);

/// `count` faults clustered around a random center: faults are drawn with
/// probability proportional to 2^-H(center, a) (exponential decay in
/// Hamming distance), which concentrates damage in one region of the cube.
[[nodiscard]] FaultSet inject_clustered(const topo::Hypercube& cube,
                                        std::uint64_t count,
                                        Xoshiro256ss& rng);

/// Disconnect the cube by surrounding a random victim node with faults:
/// all n neighbors of the victim become faulty, then any remaining budget
/// is spent uniformly on other nodes. The victim itself stays healthy, so
/// the healthy subgraph has >= 2 components whenever n < 2^n - 1.
/// Returns the fault set; `victim_out` receives the isolated node.
[[nodiscard]] FaultSet inject_isolation(const topo::Hypercube& cube,
                                        std::uint64_t extra_count,
                                        Xoshiro256ss& rng, NodeId& victim_out);

/// Fail an entire k-dimensional subcube: nodes matching a random pattern
/// on n-k fixed dimensions. Models a failed board / power domain.
[[nodiscard]] FaultSet inject_subcube(const topo::Hypercube& cube, unsigned k,
                                      Xoshiro256ss& rng);

/// `count` faulty links uniformly at random (node set untouched).
[[nodiscard]] LinkFaultSet inject_links_uniform(const topo::Hypercube& cube,
                                                std::uint64_t count,
                                                Xoshiro256ss& rng);

}  // namespace slcube::fault
