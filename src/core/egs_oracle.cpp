#include "core/egs_oracle.hpp"
#include "obs/profiler.hpp"

#include <algorithm>
#include <array>

namespace slcube::core {

namespace {

/// The pseudo-fault set the public view is the fixed point of: real
/// faults plus every healthy node with an adjacent faulty link (N2).
fault::FaultSet make_pseudo(const topo::Hypercube& cube,
                            const fault::FaultSet& faults,
                            const fault::LinkFaultSet& links) {
  fault::FaultSet pseudo = faults;
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_healthy(a) && links.touches(a)) pseudo.mark_faulty(a);
  }
  return pseudo;
}

}  // namespace

EgsOracle::EgsOracle(const topo::Hypercube& cube)
    : cube_(cube),
      faults_(cube.num_nodes()),
      links_(cube),
      pseudo_(cube),
      self_view_(cube.dimension(), cube.num_nodes(),
                 static_cast<Level>(cube.dimension())),
      in_n2_(static_cast<std::size_t>(cube.num_nodes()), 0),
      dirty_mark_(static_cast<std::size_t>(cube.num_nodes()), 0) {
  pseudo_.set_change_log(&changed_);
}

EgsOracle::EgsOracle(const topo::Hypercube& cube,
                     const fault::FaultSet& faults,
                     const fault::LinkFaultSet& link_faults)
    : cube_(cube),
      faults_(faults),
      links_(link_faults),
      pseudo_(cube, make_pseudo(cube, faults, link_faults)),
      self_view_(pseudo_.levels()),
      in_n2_(static_cast<std::size_t>(cube.num_nodes()), 0),
      dirty_mark_(static_cast<std::size_t>(cube.num_nodes()), 0) {
  SLC_EXPECT(faults.num_nodes() == cube.num_nodes());
  SLC_EXPECT(link_faults.cube().num_nodes() == cube.num_nodes());
  pseudo_.set_change_log(&changed_);
  for (NodeId a = 0; a < cube_.num_nodes(); ++a) {
    if (faults_.is_healthy(a) && links_.touches(a)) {
      in_n2_[a] = 1;
      self_view_[a] = self_level_of(a);
    }
  }
  stats_ = {};  // counters report post-construction events only
}

void EgsOracle::mark_dirty(NodeId a) {
  if (dirty_mark_[a] == 0) {
    dirty_mark_[a] = 1;
    dirty_.push_back(a);
  }
}

Level EgsOracle::self_level_of(NodeId a) {
  // Faulty and healthy-non-N2 nodes carry their public level (0 for the
  // former); only N2 nodes run their own NODE_STATUS round.
  if (in_n2_[a] == 0) return pseudo_.levels()[a];
  ++stats_.self_recomputes;
  const unsigned n = cube_.dimension();
  std::array<Level, topo::Hypercube::kMaxDimension> seq{};
  for (Dim d = 0; d < n; ++d) {
    seq[d] = links_.is_faulty(a, d)
                 ? Level{0}
                 : pseudo_.levels()[cube_.neighbor(a, d)];
  }
  std::sort(seq.begin(), seq.begin() + n);
  return node_status(std::span<const Level>(seq.data(), n), n);
}

void EgsOracle::apply_toggles(std::span<const NodeId> node_toggles,
                              std::span<const LinkToggle> link_toggles) {
  const obs::StageScope stage("egs.apply");
  // Phase 1 — toggle the real state, collecting `touched`: the nodes
  // whose pseudo status or N2 membership may have moved. Dedup matters:
  // the pseudo delta below must list each node at most once.
  std::vector<NodeId> touched;
  const auto touch = [&](NodeId x) {
    if (dirty_mark_[x] == 0) {
      dirty_mark_[x] = 1;
      dirty_.push_back(x);
      touched.push_back(x);
    }
  };
  for (const NodeId a : node_toggles) {
    SLC_EXPECT(cube_.contains(a));
    if (faults_.is_faulty(a)) {
      faults_.mark_healthy(a);
    } else {
      faults_.mark_faulty(a);
    }
    touch(a);
    ++stats_.node_events;
  }
  for (const auto& [a, d] : link_toggles) {
    const NodeId b = cube_.neighbor(a, d);
    if (links_.is_faulty(a, d)) {
      links_.mark_healthy(a, d);
    } else {
      links_.mark_faulty(a, d);
    }
    touch(a);
    touch(b);
    ++stats_.link_events;
  }

  // Phase 2 — restore the public view. The pseudo set changed exactly
  // where a touched node's membership (fault ∪ N2) flipped.
  changed_.clear();
  std::vector<NodeId> to_add;
  std::vector<NodeId> to_remove;
  for (const NodeId x : touched) {
    const bool want = faults_.is_faulty(x) || links_.touches(x);
    if (want == pseudo_.faults().is_faulty(x)) continue;
    (want ? to_add : to_remove).push_back(x);
  }
  const std::size_t delta = to_add.size() + to_remove.size();
  if (retarget_prefers_rebuild(delta, cube_.num_nodes())) {
    // Hand retarget the full pseudo target. Its delta is this exact
    // pseudo delta, so the shared predicate guarantees it takes the
    // rebuild fallback; the rebuild logs every node, which forces the
    // full self-view resync below.
    pseudo_.retarget(make_pseudo(cube_, faults_, links_));
  } else if (delta <= 4) {
    // Single-event hot path: skip the scratch FaultSet allocation.
    for (const NodeId x : to_add) pseudo_.add_fault(x);
    for (const NodeId x : to_remove) pseudo_.remove_fault(x);
  } else {
    fault::FaultSet batch(cube_.num_nodes());
    for (const NodeId x : to_add) batch.mark_faulty(x);
    for (const NodeId x : to_remove) batch.mark_faulty(x);
    pseudo_.apply(batch);
  }

  // Phase 3 — N2 membership bookkeeping for the touched nodes.
  for (const NodeId x : touched) {
    const std::uint8_t now =
        (faults_.is_healthy(x) && links_.touches(x)) ? 1 : 0;
    if (now != in_n2_[x]) {
      in_n2_[x] = now;
      if (now != 0) {
        ++stats_.n2_enters;
      } else {
        ++stats_.n2_exits;
      }
    }
  }

  // Phase 4 — refresh the self view on the dirty set: touched nodes,
  // nodes whose stored public level moved, and N2 nodes adjacent to one
  // of those (the only nodes whose NODE_STATUS inputs moved).
  for (const NodeId c : changed_) {
    mark_dirty(c);
    cube_.for_each_neighbor(c, [&](Dim, NodeId b) {
      if (in_n2_[b] != 0) mark_dirty(b);
    });
  }
  for (const NodeId x : dirty_) {
    dirty_mark_[x] = 0;
    self_view_[x] = self_level_of(x);
    ++stats_.self_refreshes;
  }
  dirty_.clear();
}

void EgsOracle::add_fault(NodeId a) {
  SLC_EXPECT_MSG(faults_.is_healthy(a), "add_fault on an already-faulty node");
  const NodeId one[] = {a};
  apply_toggles(one, {});
}

void EgsOracle::remove_fault(NodeId a) {
  SLC_EXPECT_MSG(faults_.is_faulty(a), "remove_fault on a healthy node");
  const NodeId one[] = {a};
  apply_toggles(one, {});
}

void EgsOracle::fail_link(NodeId a, Dim d) {
  SLC_EXPECT_MSG(!links_.is_faulty(a, d), "fail_link on a faulty link");
  const LinkToggle one[] = {{a, d}};
  apply_toggles({}, one);
}

void EgsOracle::recover_link(NodeId a, Dim d) {
  SLC_EXPECT_MSG(links_.is_faulty(a, d), "recover_link on a healthy link");
  const LinkToggle one[] = {{a, d}};
  apply_toggles({}, one);
}

void EgsOracle::apply(std::span<const NodeId> node_toggles,
                      std::span<const LinkToggle> link_toggles) {
  if (node_toggles.empty() && link_toggles.empty()) return;
  apply_toggles(node_toggles, link_toggles);
}

void EgsOracle::retarget(const fault::FaultSet& target_faults,
                         const fault::LinkFaultSet& target_links) {
  const obs::StageScope stage("egs.retarget");
  SLC_EXPECT(target_faults.num_nodes() == cube_.num_nodes());
  SLC_EXPECT(target_links.cube().num_nodes() == cube_.num_nodes());
  std::vector<NodeId> node_toggles;
  for (NodeId a = 0; a < cube_.num_nodes(); ++a) {
    if (faults_.is_faulty(a) != target_faults.is_faulty(a)) {
      node_toggles.push_back(a);
    }
  }
  std::vector<LinkToggle> link_toggles;
  for (const auto& [a, d] : links_.faulty_links()) {
    if (!target_links.is_faulty(a, d)) link_toggles.push_back({a, d});
  }
  for (const auto& [a, d] : target_links.faulty_links()) {
    if (!links_.is_faulty(a, d)) link_toggles.push_back({a, d});
  }
  if (node_toggles.empty() && link_toggles.empty()) return;
  apply_toggles(node_toggles, link_toggles);
}

}  // namespace slcube::core
