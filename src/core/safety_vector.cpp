#include "core/safety_vector.hpp"

#include <array>

namespace slcube::core {

SafetyVectors compute_safety_vectors(const topo::Hypercube& cube,
                                     const fault::FaultSet& faults) {
  const unsigned n = cube.dimension();
  SafetyVectors v(n, cube.num_nodes());
  // Bit 1: every healthy node reaches all neighbors in one hop.
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_healthy(a)) v.set_bit(a, 1);
  }
  // Round k: bit k+1 from the neighbors' bit k. No iteration to a fixed
  // point — each bit is final the moment it is computed.
  for (unsigned k = 1; k < n; ++k) {
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      if (faults.is_faulty(a)) continue;
      unsigned with_bit = 0;
      cube.for_each_neighbor(a, [&](Dim, NodeId b) {
        with_bit += v.bit(b, k) ? 1u : 0u;
      });
      if (with_bit >= n - k) v.set_bit(a, k + 1);  // n - (k+1) + 1
    }
  }
  return v;
}

SourceDecision decide_at_source_sv(const topo::Hypercube& cube,
                                   const SafetyVectors& vectors, NodeId s,
                                   NodeId d) {
  SourceDecision dec;
  const std::uint32_t nav = cube.navigation_vector(s, d);
  dec.hamming = bits::popcount(nav);
  if (dec.hamming == 0) {
    dec.c1 = true;
    return dec;
  }
  const unsigned n = cube.dimension();
  dec.c1 = vectors.bit(s, dec.hamming);
  cube.for_each_preferred(s, nav, [&](Dim, NodeId b) {
    // V(H-1) with H = 1 degenerates to "b == d is one hop away": true.
    dec.c2 |= dec.hamming == 1 || vectors.bit(b, dec.hamming - 1);
  });
  if (dec.hamming < n) {
    cube.for_each_spare(s, nav, [&](Dim, NodeId b) {
      dec.c3 |= vectors.bit(b, dec.hamming + 1);
    });
  }
  return dec;
}

namespace {

/// Preferred dimension whose neighbor has V(j-1) set (j = popcount(nav)
/// >= 2), lowest dimension first or random among qualifiers.
std::optional<Dim> choose_by_vector(const topo::Hypercube& cube,
                                    const SafetyVectors& vectors, NodeId a,
                                    std::uint32_t nav,
                                    const UnicastOptions& options) {
  const unsigned j = bits::popcount(nav);
  SLC_ASSERT(j >= 2);
  std::array<Dim, topo::Hypercube::kMaxDimension> pool{};
  std::size_t qualifiers = 0;
  bits::for_each_set(nav, [&](Dim dim) {
    if (vectors.bit(cube.neighbor(a, dim), j - 1)) pool[qualifiers++] = dim;
  });
  if (qualifiers == 0) return std::nullopt;
  if (options.tie_break == TieBreak::kLowestDim || qualifiers == 1) {
    return pool[0];
  }
  SLC_EXPECT(options.rng != nullptr);
  return pool[options.rng->below(qualifiers)];
}

}  // namespace

RouteResult route_unicast_sv(const topo::Hypercube& cube,
                             const fault::FaultSet& faults,
                             const SafetyVectors& vectors, NodeId s, NodeId d,
                             const UnicastOptions& options) {
  SLC_EXPECT_MSG(faults.is_healthy(s), "unicast source must be healthy");
  SLC_EXPECT_MSG(faults.is_healthy(d), "unicast destination must be healthy");

  RouteResult result;
  result.decision = decide_at_source_sv(cube, vectors, s, d);
  result.path.push_back(s);

  std::uint32_t nav = cube.navigation_vector(s, d);
  if (nav == 0) {
    result.status = RouteStatus::kDeliveredOptimal;
    return result;
  }

  NodeId cur = s;
  bool suboptimal = false;
  if (!result.decision.optimal_feasible()) {
    if (!result.decision.c3) {
      result.status = RouteStatus::kSourceRefused;
      return result;
    }
    // Spare detour onto a node whose V(H+1) bit covers the new distance.
    std::optional<Dim> spare;
    bits::for_each_clear(nav, cube.dimension(), [&](Dim dim) {
      if (!spare &&
          vectors.bit(cube.neighbor(cur, dim), result.decision.hamming + 1)) {
        spare = dim;
      }
    });
    SLC_ASSERT_MSG(spare.has_value(), "C3 held but no spare qualified");
    cur = cube.neighbor(cur, *spare);
    nav |= bits::unit(*spare);
    result.path.push_back(cur);
    suboptimal = true;
  }

  while (nav != 0) {
    if (bits::popcount(nav) == 1) {  // the only preferred neighbor is d
      cur = cube.neighbor(cur, bits::lowest_set(nav));
      nav = 0;
      result.path.push_back(cur);
      break;
    }
    const auto next = choose_by_vector(cube, vectors, cur, nav, options);
    if (!next) {
      result.status = RouteStatus::kStuck;
      return result;
    }
    cur = cube.neighbor(cur, *next);
    nav &= ~bits::unit(*next);
    result.path.push_back(cur);
  }

  SLC_ASSERT(cur == d);
  result.status = suboptimal ? RouteStatus::kDeliveredSuboptimal
                             : RouteStatus::kDeliveredOptimal;
  return result;
}

}  // namespace slcube::core
