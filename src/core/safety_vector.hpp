// EXTENSION — safety VECTORS: the per-distance refinement of safety
// levels, reconstructing the concept of Wu's follow-on work ("safety
// vectors" for fault-tolerant hypercube routing) with a self-contained
// derivation.
//
// Each healthy node a keeps an n-bit vector V_a; bit k means "a is
// guaranteed an optimal path to every healthy node at distance exactly
// k". The recurrence decouples the distances instead of nesting them the
// way the scalar level does:
//
//     V_a(1) = 1                                   (a healthy: any
//                                                  neighbor is one hop)
//     V_a(k) = 1  iff  #{ neighbors b : V_b(k-1) = 1 } >= n - k + 1.
//
// Soundness (Theorem 2's induction verbatim): a destination at distance
// k has k preferred neighbors; at most k - 1 neighbors of a lack
// V(k-1), so SOME preferred neighbor b has V_b(k-1) = 1 and the path
// recurses. Unlike the scalar level, bit k never requires bit k-1 of
// the same node, so the vector can certify long distances even when a
// close-range bit is 0 — strictly more unicasts become feasible:
//
//     S(a) >= k   =>   V_a(j) = 1 for all j <= k     (proved in tests)
//     V_a(k) = 1  =>   reach(a) >= ... bitwise       (vs the exact
//                                                    oracle of
//                                                    analysis/optimal_reach)
//
// Computation needs exactly n - 1 exchange rounds — round k derives bit
// k + 1 from the neighbors' bit k — with no fixed-point iteration at
// all, matching the GS cost model.
//
// Routing mirrors Section 3: optimal when V_s(H) = 1 or some preferred
// neighbor has V(H-1) = 1; suboptimal via a spare neighbor with
// V(H+1) = 1; refuse otherwise.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/path.hpp"
#include "core/safety.hpp"
#include "core/unicast.hpp"

namespace slcube::core {

/// Safety vectors for all nodes: vec[a] bit (k-1) == V_a(k). Faulty
/// nodes have the all-zero vector.
class SafetyVectors {
 public:
  SafetyVectors() = default;
  SafetyVectors(unsigned dimension, std::uint64_t num_nodes)
      : n_(dimension), v_(static_cast<std::size_t>(num_nodes), 0) {}

  [[nodiscard]] unsigned dimension() const noexcept { return n_; }
  [[nodiscard]] std::size_t size() const noexcept { return v_.size(); }

  /// V_a(k) for 1 <= k <= n.
  [[nodiscard]] bool bit(NodeId a, unsigned k) const noexcept {
    SLC_ASSERT(a < v_.size() && k >= 1 && k <= n_);
    return (v_[a] >> (k - 1)) & 1u;
  }
  void set_bit(NodeId a, unsigned k) noexcept {
    SLC_ASSERT(a < v_.size() && k >= 1 && k <= n_);
    v_[a] |= std::uint32_t{1} << (k - 1);
  }

  [[nodiscard]] std::uint32_t raw(NodeId a) const noexcept { return v_[a]; }

  /// Largest prefix of set bits: max k with V(1..k) all 1 (0 if bit 1 is
  /// clear — only possible for faulty nodes). The scalar-level analogue.
  [[nodiscard]] unsigned prefix_reach(NodeId a) const noexcept {
    const std::uint32_t inv = ~v_[a] & bits::low_mask(n_);
    return inv == 0 ? n_ : bits::lowest_set(inv);
  }

  friend bool operator==(const SafetyVectors&, const SafetyVectors&) =
      default;

 private:
  unsigned n_ = 0;
  std::vector<std::uint32_t> v_;
};

/// Compute all vectors in n - 1 rounds (bit k+1 from neighbors' bit k).
[[nodiscard]] SafetyVectors compute_safety_vectors(
    const topo::Hypercube& cube, const fault::FaultSet& faults);

/// Source feasibility with vectors: C1 uses V_s(H), C2 the preferred
/// neighbors' V(H-1), C3 the spare neighbors' V(H+1) (C3 is forced false
/// when H = n — there are no spare dimensions).
[[nodiscard]] SourceDecision decide_at_source_sv(const topo::Hypercube& cube,
                                                 const SafetyVectors& vectors,
                                                 NodeId s, NodeId d);

/// Route a unicast guided by vectors: at each intermediate node with
/// remaining distance j, forward to a preferred neighbor whose V(j-1)
/// bit is set (lowest dimension among them, or random per options).
[[nodiscard]] RouteResult route_unicast_sv(const topo::Hypercube& cube,
                                           const fault::FaultSet& faults,
                                           const SafetyVectors& vectors,
                                           NodeId s, NodeId d,
                                           const UnicastOptions& options = {});

}  // namespace slcube::core
