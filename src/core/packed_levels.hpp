// PackedLevels — bit-packed structure-of-arrays storage for safety levels.
//
// A safety level is an integer 0..n with n <= topo::Hypercube::kMaxDimension,
// so 5 bits suffice; 12 levels share one 64-bit word (60 bits used, the top
// 4 bits always zero). This is the single storage layer behind
// core::SafetyLevels: the scratch GLOBAL_STATUS fixed point, the parallel
// blocked GS rounds, and the incremental SafetyOracle/EgsOracle cascades all
// read and write the same packed words, which is what makes a Q20 table
// (2^20 nodes) cost ~700 KiB instead of the 1 MiB of a byte-per-level array
// — and, more importantly, what lets one GS round's neighbor gather touch
// 12 node levels per word load.
//
// Invariants (maintained by every mutator, relied on by operator==):
//   * the 4 spare top bits of every word are zero;
//   * slots at index >= size() in the last word are zero.
// Word-granular writes mean two threads may safely write *different words*
// concurrently but never different slots of the same word — the parallel GS
// rounds therefore split node ranges on kLevelsPerWord boundaries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitops.hpp"
#include "common/contracts.hpp"

namespace slcube::core {

class PackedLevels {
 public:
  static constexpr unsigned kBitsPerLevel = 5;
  static constexpr unsigned kLevelsPerWord = 12;  // 12 * 5 = 60 bits used
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1}
                                              << kBitsPerLevel) -
                                             1;
  static_assert(kBitsPerLevel * kLevelsPerWord <= 64,
                "a word must hold kLevelsPerWord slots");

  PackedLevels() = default;
  PackedLevels(std::uint64_t num_levels, std::uint8_t fill)
      : size_(num_levels),
        words_(static_cast<std::size_t>((num_levels + kLevelsPerWord - 1) /
                                        kLevelsPerWord),
              0) {
    this->fill(fill);
  }

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] std::uint8_t get(std::uint64_t i) const noexcept {
    SLC_ASSERT(i < size_);
    return static_cast<std::uint8_t>(
        (words_[static_cast<std::size_t>(i / kLevelsPerWord)] >>
         (kBitsPerLevel * (i % kLevelsPerWord))) &
        kSlotMask);
  }

  void set(std::uint64_t i, std::uint8_t v) noexcept {
    SLC_ASSERT(i < size_);
    SLC_ASSERT(v <= kSlotMask);
    const unsigned shift =
        kBitsPerLevel * static_cast<unsigned>(i % kLevelsPerWord);
    std::uint64_t& w = words_[static_cast<std::size_t>(i / kLevelsPerWord)];
    w = (w & ~(kSlotMask << shift)) | (std::uint64_t{v} << shift);
  }

  /// Set every slot to `v` (tail slots beyond size() stay zero).
  void fill(std::uint8_t v) noexcept {
    SLC_ASSERT(v <= kSlotMask);
    std::uint64_t pattern = 0;
    for (unsigned s = 0; s < kLevelsPerWord; ++s) {
      pattern |= std::uint64_t{v} << (kBitsPerLevel * s);
    }
    for (std::uint64_t& w : words_) w = pattern;
    clear_tail();
  }

  /// The packed words (read-only). Word i holds slots
  /// [i * kLevelsPerWord, (i + 1) * kLevelsPerWord).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }
  /// Mutable word access for bulk writers (the parallel GS round kernel).
  /// Callers own the two invariants documented above.
  [[nodiscard]] std::span<std::uint64_t> mutable_words() noexcept {
    return words_;
  }

  /// Bytes of table storage per stored level — the BENCH_MEGA_CUBE
  /// "bytes/node" numerator is words * 8 over size().
  [[nodiscard]] std::uint64_t storage_bytes() const noexcept {
    return static_cast<std::uint64_t>(words_.size()) * sizeof(std::uint64_t);
  }

  friend bool operator==(const PackedLevels&, const PackedLevels&) = default;

 private:
  /// Zero the slots at index >= size() in the last word (equality is
  /// word-wise, so tail garbage must never exist).
  void clear_tail() noexcept {
    const unsigned used = static_cast<unsigned>(size_ % kLevelsPerWord);
    if (used == 0 || words_.empty()) return;
    words_.back() &= (std::uint64_t{1} << (kBitsPerLevel * used)) - 1;
  }

  std::uint64_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Deterministic order-insensitive digest of a packed table (position-
/// salted xor fold over the words) — what BENCH_MEGA_CUBE pins per dim.
[[nodiscard]] std::uint64_t packed_digest(const PackedLevels& levels) noexcept;

}  // namespace slcube::core
