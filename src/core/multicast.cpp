#include "core/multicast.hpp"

#include <algorithm>

namespace slcube::core {

namespace {

struct Packet {
  NodeId node;
  std::vector<std::size_t> dest_idx;  ///< indices into `destinations`
};

}  // namespace

MulticastResult multicast(const topo::Hypercube& cube,
                          const fault::FaultSet& faults,
                          const SafetyLevels& levels, NodeId source,
                          const std::vector<NodeId>& destinations) {
  SLC_EXPECT_MSG(faults.is_healthy(source),
                 "multicast source must be healthy");
  const unsigned n = cube.dimension();
  MulticastResult result;
  result.delivered.assign(destinations.size(), false);
  result.refused.assign(destinations.size(), false);

  // Source-side acceptance per destination: an optimal-path guarantee
  // exists iff some preferred neighbor has level >= H - 1 (for H >= 1;
  // C1 implies such a neighbor exists, so this check subsumes it).
  Packet root{source, {}};
  for (std::size_t i = 0; i < destinations.size(); ++i) {
    const NodeId d = destinations[i];
    SLC_EXPECT_MSG(faults.is_healthy(d),
                   "multicast destinations must be healthy");
    if (d == source) {
      result.delivered[i] = true;
      continue;
    }
    const std::uint32_t nav = cube.navigation_vector(source, d);
    const unsigned h = bits::popcount(nav);
    bool feasible = false;
    cube.for_each_preferred(source, nav, [&](Dim, NodeId b) {
      feasible |= levels[b] + 1u >= h;
    });
    if (feasible) {
      root.dest_idx.push_back(i);
    } else {
      result.refused[i] = true;
    }
  }

  std::vector<Packet> worklist;
  if (!root.dest_idx.empty()) worklist.push_back(std::move(root));

  while (!worklist.empty()) {
    Packet pkt = std::move(worklist.back());
    worklist.pop_back();
    const NodeId cur = pkt.node;

    // Candidate dimensions per destination: preferred dims whose neighbor
    // level keeps the per-destination invariant (level >= H - 1, i.e.
    // level >= distance from the neighbor).
    std::vector<std::uint32_t> candidates(pkt.dest_idx.size(), 0);
    std::vector<std::size_t> open;  // positions not yet assigned
    for (std::size_t p = 0; p < pkt.dest_idx.size(); ++p) {
      const NodeId d = destinations[pkt.dest_idx[p]];
      if (d == cur) {
        result.delivered[pkt.dest_idx[p]] = true;
        continue;
      }
      const std::uint32_t nav = cube.navigation_vector(cur, d);
      const unsigned h = bits::popcount(nav);
      std::uint32_t mask = 0;
      cube.for_each_preferred(cur, nav, [&](Dim dim, NodeId b) {
        if (levels[b] + 1u >= h) mask |= bits::unit(dim);
      });
      SLC_ASSERT_MSG(mask != 0, "multicast invariant lost mid-tree");
      candidates[p] = mask;
      open.push_back(p);
    }

    // Greedy dimension packing: repeatedly take the dimension covering
    // the most open destinations (ties: higher neighbor level, then
    // lower dimension index) and branch once for all of them.
    while (!open.empty()) {
      Dim best_dim = 0;
      std::size_t best_cover = 0;
      for (Dim dim = 0; dim < n; ++dim) {
        std::size_t cover = 0;
        for (const std::size_t p : open) {
          cover += bits::test(candidates[p], dim) ? 1u : 0u;
        }
        const bool better =
            cover > best_cover ||
            (cover == best_cover && cover > 0 &&
             levels[cube.neighbor(cur, dim)] >
                 levels[cube.neighbor(cur, best_dim)]);
        if (better) {
          best_dim = dim;
          best_cover = cover;
        }
      }
      SLC_ASSERT(best_cover > 0);

      Packet branch{cube.neighbor(cur, best_dim), {}};
      std::vector<std::size_t> rest;
      for (const std::size_t p : open) {
        if (bits::test(candidates[p], best_dim)) {
          branch.dest_idx.push_back(pkt.dest_idx[p]);
        } else {
          rest.push_back(p);
        }
      }
      ++result.traffic;
      result.edges.emplace_back(cur, branch.node);
      worklist.push_back(std::move(branch));
      open = std::move(rest);
    }
  }
  return result;
}

}  // namespace slcube::core
