#include "core/broadcast.hpp"

#include <algorithm>

#include "core/unicast.hpp"

namespace slcube::core {

namespace {

struct Task {
  NodeId node;
  std::vector<Dim> dims;  ///< dimensions of the subcube this node covers
};

}  // namespace

BroadcastResult broadcast(const topo::Hypercube& cube,
                          const fault::FaultSet& faults,
                          const SafetyLevels& levels, NodeId source) {
  SLC_EXPECT_MSG(faults.is_healthy(source), "broadcast source must be healthy");
  const unsigned n = cube.dimension();
  BroadcastResult result;
  result.reached.assign(static_cast<std::size_t>(cube.num_nodes()), false);
  result.reached[source] = true;

  std::vector<Dim> all_dims(n);
  for (Dim d = 0; d < n; ++d) all_dims[d] = d;
  std::vector<Task> worklist{{source, std::move(all_dims)}};

  while (!worklist.empty()) {
    Task task = std::move(worklist.back());
    worklist.pop_back();
    // Largest subtree to the highest-level child: sort this node's
    // dimension list by child level descending (lowest dim on ties for
    // determinism).
    std::sort(task.dims.begin(), task.dims.end(), [&](Dim x, Dim y) {
      const Level lx = levels[cube.neighbor(task.node, x)];
      const Level ly = levels[cube.neighbor(task.node, y)];
      return lx != ly ? lx > ly : x < y;
    });

    for (std::size_t i = 0; i < task.dims.size(); ++i) {
      const NodeId child = cube.neighbor(task.node, task.dims[i]);
      std::vector<Dim> child_dims(task.dims.begin() +
                                      static_cast<std::ptrdiff_t>(i) + 1,
                                  task.dims.end());
      if (faults.is_healthy(child)) {
        ++result.messages;
        result.reached[child] = true;
        if (!child_dims.empty()) {
          worklist.push_back({child, std::move(child_dims)});
        }
        continue;
      }
      // Faulty child: unicast-patch every healthy node of its subtree.
      const std::uint32_t base = child;
      const auto combos = std::uint32_t{1} << child_dims.size();
      for (std::uint32_t c = 1; c < combos; ++c) {  // c = 0 is `child` itself
        NodeId x = base;
        for (std::size_t j = 0; j < child_dims.size(); ++j) {
          if (bits::test(c, static_cast<Dim>(j))) {
            x = bits::flip(x, child_dims[j]);
          }
        }
        if (faults.is_faulty(x)) continue;
        const RouteResult r =
            route_unicast(cube, faults, levels, task.node, x);
        if (r.delivered()) {
          result.messages += r.hops();
          result.reached[x] = true;
        }
      }
    }
  }

  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_healthy(a) && !result.reached[a]) ++result.missed;
  }
  return result;
}

}  // namespace slcube::core
