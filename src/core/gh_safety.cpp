#include "core/gh_safety.hpp"

#include <algorithm>
#include <array>

namespace slcube::core {

namespace {

/// Generic max-level selection over explicitly enumerated candidates.
struct Candidate {
  NodeId node = 0;
  Level level = 0;
};

std::optional<NodeId> argmax_level(const std::vector<Candidate>& cands,
                                   const UnicastOptions& options) {
  Level best = 0;
  std::size_t ties = 0;
  std::vector<NodeId> pool;
  for (const Candidate& c : cands) {
    if (c.level > best) {
      best = c.level;
      pool.clear();
      pool.push_back(c.node);
      ties = 1;
    } else if (c.level == best && best > 0) {
      pool.push_back(c.node);
      ++ties;
    }
  }
  if (ties == 0) return std::nullopt;
  if (options.tie_break == TieBreak::kLowestDim || ties == 1) {
    return pool.front();  // candidates enumerated low dim / low coord first
  }
  SLC_EXPECT_MSG(options.rng != nullptr,
                 "TieBreak::kRandom requires UnicastOptions::rng");
  return pool[options.rng->below(pool.size())];
}

}  // namespace

Level implied_level_gh(const topo::GeneralizedHypercube& gh,
                       const fault::FaultSet& faults,
                       const SafetyLevels& levels, NodeId a) {
  SLC_EXPECT(faults.is_healthy(a));
  const unsigned n = gh.dimension();
  SLC_EXPECT(n <= topo::Hypercube::kMaxDimension);
  std::array<Level, topo::Hypercube::kMaxDimension> seq{};
  for (Dim i = 0; i < n; ++i) {
    Level dim_min = static_cast<Level>(n);
    const std::uint32_t own = gh.coordinate(a, i);
    for (std::uint32_t c = 0; c < gh.radix(i); ++c) {
      if (c == own) continue;
      dim_min = std::min(dim_min, levels[gh.with_coordinate(a, i, c)]);
    }
    seq[i] = dim_min;
  }
  std::sort(seq.begin(), seq.begin() + n);
  return node_status(std::span<const Level>(seq.data(), n), n);
}

GhGsResult run_gs_gh(const topo::GeneralizedHypercube& gh,
                     const fault::FaultSet& faults) {
  const unsigned n = gh.dimension();
  GhGsResult result;
  result.levels = SafetyLevels(n, gh.num_nodes(), static_cast<Level>(n));
  for (NodeId a = 0; a < gh.num_nodes(); ++a) {
    if (faults.is_faulty(a)) result.levels[a] = 0;
  }
  SafetyLevels next = result.levels;
  const std::uint64_t hard_cap = gh.num_nodes() * n + 1;
  for (std::uint64_t round = 1;; ++round) {
    SLC_ASSERT_MSG(round <= hard_cap, "GH GS failed to converge");
    std::uint64_t changed = 0;
    for (NodeId a = 0; a < gh.num_nodes(); ++a) {
      if (faults.is_faulty(a)) continue;
      const Level updated = implied_level_gh(gh, faults, result.levels, a);
      next[a] = updated;
      changed += updated != result.levels[a] ? 1u : 0u;
    }
    if (changed == 0) break;
    std::swap(result.levels, next);
    result.changes_per_round.push_back(changed);
  }
  result.rounds_to_stabilize =
      static_cast<unsigned>(result.changes_per_round.size());
  SLC_ENSURE(is_consistent_gh(gh, faults, result.levels));
  return result;
}

bool is_consistent_gh(const topo::GeneralizedHypercube& gh,
                      const fault::FaultSet& faults,
                      const SafetyLevels& levels) {
  SLC_EXPECT(levels.size() == gh.num_nodes());
  for (NodeId a = 0; a < gh.num_nodes(); ++a) {
    if (faults.is_faulty(a)) {
      if (levels[a] != 0) return false;
    } else if (levels[a] != implied_level_gh(gh, faults, levels, a)) {
      return false;
    }
  }
  return true;
}

SourceDecision decide_at_source_gh(const topo::GeneralizedHypercube& gh,
                                   const SafetyLevels& levels, NodeId s,
                                   NodeId d) {
  SourceDecision dec;
  dec.hamming = gh.distance(s, d);
  if (dec.hamming == 0) {
    dec.c1 = true;
    return dec;
  }
  dec.c1 = levels[s] >= dec.hamming;
  for (Dim i = 0; i < gh.dimension(); ++i) {
    const std::uint32_t sc = gh.coordinate(s, i);
    const std::uint32_t dc = gh.coordinate(d, i);
    if (sc != dc) {
      // Preferred neighbor along a differing dimension: the node carrying
      // the destination's coordinate.
      dec.c2 |= levels[gh.with_coordinate(s, i, dc)] + 1u >= dec.hamming;
    } else {
      // Every other node along a matching dimension is a spare neighbor.
      for (std::uint32_t c = 0; c < gh.radix(i); ++c) {
        if (c == sc) continue;
        dec.c3 |= levels[gh.with_coordinate(s, i, c)] >= dec.hamming + 1u;
      }
    }
  }
  return dec;
}

RouteResult route_unicast_gh(const topo::GeneralizedHypercube& gh,
                             const fault::FaultSet& faults,
                             const SafetyLevels& levels, NodeId s, NodeId d,
                             const UnicastOptions& options) {
  SLC_EXPECT_MSG(faults.is_healthy(s), "unicast source must be healthy");
  SLC_EXPECT_MSG(faults.is_healthy(d), "unicast destination must be healthy");

  RouteResult result;
  result.decision = decide_at_source_gh(gh, levels, s, d);
  result.path.push_back(s);
  if (result.decision.hamming == 0) {
    result.status = RouteStatus::kDeliveredOptimal;
    return result;
  }

  NodeId cur = s;
  bool suboptimal = false;
  std::vector<Candidate> cands;

  auto preferred_candidates = [&](NodeId a) {
    cands.clear();
    for (Dim i = 0; i < gh.dimension(); ++i) {
      const std::uint32_t dc = gh.coordinate(d, i);
      if (gh.coordinate(a, i) == dc) continue;
      const NodeId b = gh.with_coordinate(a, i, dc);
      cands.push_back({b, levels[b]});
    }
  };

  if (!result.decision.optimal_feasible()) {
    if (!result.decision.c3) {
      result.status = RouteStatus::kSourceRefused;
      return result;
    }
    // Suboptimal detour: best spare neighbor with level >= H + 1.
    cands.clear();
    for (Dim i = 0; i < gh.dimension(); ++i) {
      const std::uint32_t sc = gh.coordinate(cur, i);
      if (sc != gh.coordinate(d, i)) continue;
      for (std::uint32_t c = 0; c < gh.radix(i); ++c) {
        if (c == sc) continue;
        const NodeId b = gh.with_coordinate(cur, i, c);
        if (levels[b] >= result.decision.hamming + 1u) {
          cands.push_back({b, levels[b]});
        }
      }
    }
    const auto spare = argmax_level(cands, options);
    SLC_ASSERT_MSG(spare.has_value(), "C3 held but no spare qualified");
    cur = *spare;
    result.path.push_back(cur);
    suboptimal = true;
  }

  while (cur != d) {
    preferred_candidates(cur);
    const auto next = argmax_level(cands, options);
    if (!next) {
      result.status = RouteStatus::kStuck;
      return result;
    }
    cur = *next;
    result.path.push_back(cur);
  }

  result.status = suboptimal ? RouteStatus::kDeliveredSuboptimal
                             : RouteStatus::kDeliveredOptimal;
  return result;
}

}  // namespace slcube::core
