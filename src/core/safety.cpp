#include "core/safety.hpp"

#include <algorithm>
#include <array>

namespace slcube::core {

std::vector<NodeId> SafetyLevels::safe_nodes() const {
  std::vector<NodeId> out;
  for (NodeId a = 0; a < packed_.size(); ++a) {
    if (packed_.get(a) == n_) out.push_back(a);
  }
  return out;
}

std::vector<Level> SafetyLevels::unpack() const {
  std::vector<Level> out(static_cast<std::size_t>(packed_.size()));
  for (NodeId a = 0; a < packed_.size(); ++a) out[a] = packed_.get(a);
  return out;
}

Level node_status(std::span<const Level> sorted, unsigned n) {
  SLC_EXPECT(sorted.size() == n);
  for (unsigned i = 0; i < n; ++i) {
    if (sorted[i] < i) {
      // Sortedness forces equality at the minimal failing index: the
      // previous element is >= i-1 and <= sorted[i] < i.
      SLC_ASSERT(sorted[i] == i - 1);
      return static_cast<Level>(i);
    }
  }
  return static_cast<Level>(n);
}

Level implied_level(const topo::Hypercube& cube,
                    const fault::FaultSet& faults, const SafetyLevels& levels,
                    NodeId a) {
  SLC_EXPECT(faults.is_healthy(a));
  const unsigned n = cube.dimension();
  // Counting-sort form of the NODE_STATUS kernel: S_i (the (i+1)-th
  // smallest neighbor level) is < i iff at least i+1 neighbors sit at a
  // level <= i-1, so the minimal failing index is the first i with
  // cnt_le(i-1) >= i+1 — no sort needed, and the packed gather is a
  // plain shift+mask per neighbor. test_safety pins this equal to the
  // sort-then-node_status kernel over exhaustive level sequences.
  std::array<std::uint8_t, topo::Hypercube::kMaxDimension + 1> cnt{};
  for (Dim d = 0; d < n; ++d) ++cnt[levels[cube.neighbor(a, d)]];
  unsigned at_most = 0;  // neighbors with level <= i-1, maintained per i
  for (unsigned i = 1; i < n; ++i) {
    at_most += cnt[i - 1];
    if (at_most >= i + 1) return static_cast<Level>(i);
  }
  return static_cast<Level>(n);
}

bool is_consistent(const topo::Hypercube& cube, const fault::FaultSet& faults,
                   const SafetyLevels& levels) {
  SLC_EXPECT(levels.size() == cube.num_nodes());
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_faulty(a)) {
      if (levels[a] != 0) return false;
    } else if (levels[a] != implied_level(cube, faults, levels, a)) {
      return false;
    }
  }
  return true;
}

SafetyLevels constructive_assignment(const topo::Hypercube& cube,
                                     const fault::FaultSet& faults) {
  const unsigned n = cube.dimension();
  // Unassigned healthy nodes carry the sentinel n during construction;
  // that is exactly the value they keep if never assigned (last round of
  // the proof), so no fix-up pass is needed — but we must not let the
  // sentinel count as "level <= k-1", which n never does for k <= n-1.
  SafetyLevels levels(n, cube.num_nodes(), static_cast<Level>(n));
  std::vector<bool> assigned(static_cast<std::size_t>(cube.num_nodes()),
                             false);
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_faulty(a)) {
      levels[a] = 0;
      assigned[a] = true;
    }
  }
  std::vector<NodeId> newly;
  for (unsigned k = 1; k <= n - 1; ++k) {
    newly.clear();
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      if (assigned[a]) continue;
      unsigned low = 0;  // neighbors already assigned a level <= k-1
      cube.for_each_neighbor(a, [&](Dim, NodeId bnode) {
        if (assigned[bnode] && levels[bnode] <= k - 1) ++low;
      });
      if (low >= k + 1) newly.push_back(a);
    }
    // Assign after the scan: the proof assigns all of round k's nodes
    // simultaneously, based on levels from rounds < k only.
    for (const NodeId a : newly) {
      levels[a] = static_cast<Level>(k);
      assigned[a] = true;
    }
  }
  SLC_ENSURE_MSG(is_consistent(cube, faults, levels),
                 "constructive assignment must satisfy Definition 1");
  return levels;
}

}  // namespace slcube::core
