// Safety levels (Definition 1 of the paper).
//
// The safety level of a faulty node is 0. For a nonfaulty node a of an
// n-cube, let (S0, S1, ..., S_{n-1}) be the *nondecreasing* sequence of
// its neighbors' levels. Then
//
//     S(a) = n                     if (S0,...,S_{n-1}) >= (0,1,...,n-1)
//     S(a) = k                     if (S0,...,S_{k-1}) >= (0,...,k-1)
//                                  and S_k = k - 1.
//
// Both cases collapse to one kernel: S(a) = min{ i : S_i < i }, or n when
// no such index exists — at the minimal failing index i the sortedness of
// the sequence forces S_i = i - 1 exactly, which node_status() asserts.
//
// Theorem 1: for every fault set the consistent assignment exists and is
// unique; constructive_assignment() implements the round-by-round
// existence construction from the proof, and is_consistent() is the
// Definition-1 predicate used to verify any candidate assignment.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault_set.hpp"
#include "topology/hypercube.hpp"

namespace slcube::core {

/// A safety level: 0 (faulty) .. n (safe). uint8_t bounds n at 255, far
/// above Hypercube::kMaxDimension.
using Level = std::uint8_t;

/// Safety levels for every node of one cube, indexed by NodeId.
class SafetyLevels {
 public:
  SafetyLevels() = default;
  SafetyLevels(unsigned dimension, std::uint64_t num_nodes, Level fill)
      : n_(dimension), v_(static_cast<std::size_t>(num_nodes), fill) {}

  [[nodiscard]] unsigned dimension() const noexcept { return n_; }
  [[nodiscard]] std::size_t size() const noexcept { return v_.size(); }

  [[nodiscard]] Level operator[](NodeId a) const noexcept {
    SLC_ASSERT(a < v_.size());
    return v_[a];
  }
  [[nodiscard]] Level& operator[](NodeId a) noexcept {
    SLC_ASSERT(a < v_.size());
    return v_[a];
  }

  /// A node is *safe* iff its level is n (the maximum).
  [[nodiscard]] bool is_safe(NodeId a) const noexcept {
    return (*this)[a] == n_;
  }

  /// Node ids of all safe (level n) nodes.
  [[nodiscard]] std::vector<NodeId> safe_nodes() const;

  [[nodiscard]] const std::vector<Level>& raw() const noexcept { return v_; }

  friend bool operator==(const SafetyLevels&, const SafetyLevels&) = default;

 private:
  unsigned n_ = 0;
  std::vector<Level> v_;
};

/// The NODE_STATUS kernel: level implied by a *sorted nondecreasing*
/// sequence of `n` neighbor levels.
[[nodiscard]] Level node_status(std::span<const Level> sorted, unsigned n);

/// Level Definition 1 implies for node `a` given its neighbors' current
/// levels (gathers, sorts, applies node_status). `a` must be healthy.
[[nodiscard]] Level implied_level(const topo::Hypercube& cube,
                                  const fault::FaultSet& faults,
                                  const SafetyLevels& levels, NodeId a);

/// Definition-1 predicate: does `levels` satisfy the safety-level
/// condition at every node (faulty nodes 0, healthy nodes equal to their
/// implied level)?
[[nodiscard]] bool is_consistent(const topo::Hypercube& cube,
                                 const fault::FaultSet& faults,
                                 const SafetyLevels& levels);

/// The existence construction from the proof of Theorem 1: round k
/// assigns level k to every still-unassigned healthy node with at least
/// k+1 neighbors of level <= k-1; survivors of rounds 1..n-1 get level n.
/// Returns the (unique) consistent assignment.
[[nodiscard]] SafetyLevels constructive_assignment(
    const topo::Hypercube& cube, const fault::FaultSet& faults);

}  // namespace slcube::core
