// Safety levels (Definition 1 of the paper).
//
// The safety level of a faulty node is 0. For a nonfaulty node a of an
// n-cube, let (S0, S1, ..., S_{n-1}) be the *nondecreasing* sequence of
// its neighbors' levels. Then
//
//     S(a) = n                     if (S0,...,S_{n-1}) >= (0,1,...,n-1)
//     S(a) = k                     if (S0,...,S_{k-1}) >= (0,...,k-1)
//                                  and S_k = k - 1.
//
// Both cases collapse to one kernel: S(a) = min{ i : S_i < i }, or n when
// no such index exists — at the minimal failing index i the sortedness of
// the sequence forces S_i = i - 1 exactly, which node_status() asserts.
//
// Theorem 1: for every fault set the consistent assignment exists and is
// unique; constructive_assignment() implements the round-by-round
// existence construction from the proof, and is_consistent() is the
// Definition-1 predicate used to verify any candidate assignment.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/packed_levels.hpp"
#include "fault/fault_set.hpp"
#include "topology/hypercube.hpp"

namespace slcube::core {

/// A safety level: 0 (faulty) .. n (safe). uint8_t bounds n at 255, far
/// above Hypercube::kMaxDimension.
using Level = std::uint8_t;

// Compile-time width guards for the packed representation and the node/
// mask arithmetic it leans on. A level is at most kMaxDimension, which
// must fit a 5-bit slot; node ids and navigation vectors are 32-bit, so
// the dimension must stay below 32 for `1 << dim`-style mask math to be
// safe everywhere (bitops.hpp works in unsigned 32-bit words).
static_assert(topo::Hypercube::kMaxDimension <= PackedLevels::kSlotMask,
              "a safety level must fit a packed 5-bit slot");
static_assert(topo::Hypercube::kMaxDimension < 32,
              "NodeId and navigation-vector mask math is 32-bit");

/// Safety levels for every node of one cube, indexed by NodeId.
///
/// Storage is the bit-packed PackedLevels (5 bits per level, 12 per
/// 64-bit word): every consumer — scratch GS, the incremental oracles,
/// routing, the serving snapshots — shares this one layer. Reads return
/// Level by value; writes go through set() or the WriteRef proxy that
/// `levels[a] = k` resolves to.
class SafetyLevels {
 public:
  /// Write proxy returned by the non-const operator[]; converts to Level
  /// on read and forwards assignment to the packed word.
  class WriteRef {
   public:
    operator Level() const noexcept { return p_->get(a_); }  // NOLINT
    WriteRef& operator=(Level v) noexcept {
      p_->set(a_, v);
      return *this;
    }
    WriteRef& operator=(const WriteRef& o) noexcept {
      return *this = static_cast<Level>(o);
    }

   private:
    friend class SafetyLevels;
    WriteRef(PackedLevels* p, NodeId a) noexcept : p_(p), a_(a) {}
    PackedLevels* p_;
    NodeId a_;
  };

  SafetyLevels() = default;
  SafetyLevels(unsigned dimension, std::uint64_t num_nodes, Level fill)
      : n_(dimension), packed_(num_nodes, fill) {}

  [[nodiscard]] unsigned dimension() const noexcept { return n_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(packed_.size());
  }

  [[nodiscard]] Level operator[](NodeId a) const noexcept {
    SLC_ASSERT(a < packed_.size());
    return packed_.get(a);
  }
  [[nodiscard]] WriteRef operator[](NodeId a) noexcept {
    SLC_ASSERT(a < packed_.size());
    return WriteRef(&packed_, a);
  }
  void set(NodeId a, Level v) noexcept {
    SLC_ASSERT(a < packed_.size());
    packed_.set(a, v);
  }

  /// A node is *safe* iff its level is n (the maximum).
  [[nodiscard]] bool is_safe(NodeId a) const noexcept {
    return (*this)[a] == n_;
  }

  /// Node ids of all safe (level n) nodes.
  [[nodiscard]] std::vector<NodeId> safe_nodes() const;

  /// The shared packed storage (word loads for bulk readers/writers).
  [[nodiscard]] const PackedLevels& packed() const noexcept { return packed_; }
  [[nodiscard]] PackedLevels& packed() noexcept { return packed_; }

  /// Byte-per-level copy, for call sites that want a flat array (tests,
  /// reporting) — O(N), not for hot paths.
  [[nodiscard]] std::vector<Level> unpack() const;

  friend bool operator==(const SafetyLevels&, const SafetyLevels&) = default;

 private:
  unsigned n_ = 0;
  PackedLevels packed_;
};

/// The NODE_STATUS kernel: level implied by a *sorted nondecreasing*
/// sequence of `n` neighbor levels.
[[nodiscard]] Level node_status(std::span<const Level> sorted, unsigned n);

/// Level Definition 1 implies for node `a` given its neighbors' current
/// levels (counts level occurrences — equivalent to gather + sort +
/// node_status, without the sort). `a` must be healthy.
[[nodiscard]] Level implied_level(const topo::Hypercube& cube,
                                  const fault::FaultSet& faults,
                                  const SafetyLevels& levels, NodeId a);

/// Definition-1 predicate: does `levels` satisfy the safety-level
/// condition at every node (faulty nodes 0, healthy nodes equal to their
/// implied level)?
[[nodiscard]] bool is_consistent(const topo::Hypercube& cube,
                                 const fault::FaultSet& faults,
                                 const SafetyLevels& levels);

/// The existence construction from the proof of Theorem 1: round k
/// assigns level k to every still-unassigned healthy node with at least
/// k+1 neighbors of level <= k-1; survivors of rounds 1..n-1 get level n.
/// Returns the (unique) consistent assignment.
[[nodiscard]] SafetyLevels constructive_assignment(
    const topo::Hypercube& cube, const fault::FaultSet& faults);

}  // namespace slcube::core
