// The unicasting algorithm of Section 3 — UNICASTING_AT_SOURCE_NODE and
// UNICASTING_AT_INTERMEDIATE_NODE.
//
// At the source s with destination d, H = H(s, d), N = s ⊕ d:
//   C1: S(s) >= H                        — source safe enough
//   C2: ∃ preferred neighbor with level >= H - 1
//   C3: ∃ spare neighbor with level >= H + 1
// C1 or C2 => OPTIMAL unicasting: forward to the preferred neighbor of
// maximal safety level, clearing that navigation bit. Else C3 =>
// SUBOPTIMAL: forward once to the spare neighbor of maximal level,
// *setting* its navigation bit (the detour is repaid later), after which
// routing proceeds exactly as in the optimal case from the spare node.
// Else the unicast FAILS, detected entirely at the source — the feature
// that makes the scheme usable in disconnected hypercubes (Section 3.3).
//
// Every intermediate node forwards to its preferred neighbor of maximal
// safety level. Theorem 2 guarantees that under C1/C2 the max-level
// preferred neighbor always has level >= remaining distance - 1, so the
// walk never meets a dead end and delivers in exactly H hops (H + 2 when
// C3 was used). A healthy node always has level >= 1, so "level == 0"
// is synonymous with "faulty" and routing needs only the level table.
//
// Tie-breaking among equally-maximal neighbors is not specified by the
// paper; kLowestDim reproduces every concrete route the paper walks
// through (Figs. 1 and 3), and kRandom is the ablation (DESIGN.md #1).
#pragma once

#include <cstdint>
#include <optional>

#include "analysis/path.hpp"
#include "common/rng.hpp"
#include "core/safety.hpp"
#include "obs/trace.hpp"

namespace slcube::core {

enum class RouteStatus : std::uint8_t {
  kDeliveredOptimal,     ///< delivered in exactly H hops
  kDeliveredSuboptimal,  ///< delivered in exactly H + 2 hops
  kSourceRefused,        ///< C1, C2 and C3 all failed; nothing was sent
  kStuck,                ///< mid-route dead end — impossible unless the
                         ///< level table is inconsistent/stale (used by
                         ///< robustness experiments)
};

[[nodiscard]] const char* to_string(RouteStatus s);

enum class TieBreak : std::uint8_t { kLowestDim, kRandom };

struct UnicastOptions {
  TieBreak tie_break = TieBreak::kLowestDim;
  /// Required when tie_break == kRandom.
  Xoshiro256ss* rng = nullptr;
  /// When non-null, the route emits structured events (source decision,
  /// every hop, spare detour, terminal status) to this sink. The default
  /// null sink costs one branch per decision.
  obs::TraceSink* trace = nullptr;
};

/// The source-side feasibility check, exposed separately because the
/// paper stresses that feasibility is decidable *locally at the source*.
struct SourceDecision {
  unsigned hamming = 0;
  bool c1 = false;
  bool c2 = false;
  bool c3 = false;
  /// EGS only (Section 4.1, footnote 3): the destination is the far end
  /// of one of the source's own faulty links. C1 is forced off — the
  /// self-view guarantee excludes exactly these nodes — and any delivery
  /// must take the H + 2 detour around the dead link. Always false for
  /// plain node-fault routing.
  bool dest_link_faulty = false;
  [[nodiscard]] bool optimal_feasible() const noexcept { return c1 || c2; }
  [[nodiscard]] bool feasible() const noexcept { return c1 || c2 || c3; }
};

[[nodiscard]] SourceDecision decide_at_source(const topo::Hypercube& cube,
                                              const SafetyLevels& levels,
                                              NodeId s, NodeId d);

struct RouteResult {
  RouteStatus status = RouteStatus::kSourceRefused;
  SourceDecision decision;
  /// Visited nodes, source first; complete on delivery, partial on kStuck,
  /// just {s} on kSourceRefused.
  analysis::Path path;

  [[nodiscard]] bool delivered() const noexcept {
    return status == RouteStatus::kDeliveredOptimal ||
           status == RouteStatus::kDeliveredSuboptimal;
  }
  [[nodiscard]] unsigned hops() const noexcept {
    return static_cast<unsigned>(path.size() - 1);
  }
};

/// Route one unicast from s to d. Both endpoints must be healthy; `levels`
/// is normally the stabilized GS fixed point, but any table is accepted
/// (robustness experiments feed deliberately stale ones, which is the only
/// way to observe kStuck).
[[nodiscard]] RouteResult route_unicast(const topo::Hypercube& cube,
                                        const fault::FaultSet& faults,
                                        const SafetyLevels& levels, NodeId s,
                                        NodeId d,
                                        const UnicastOptions& options = {});

/// One intermediate-node forwarding decision: the preferred dimension
/// (set bit of `nav`) whose neighbor has the maximal *nonzero* level, or
/// nullopt when every preferred neighbor is faulty. Exposed for the
/// message-level protocol in src/sim, which must make hop decisions one
/// node at a time. `ties_out` (optional) receives the number of
/// equally-maximal candidates the tie-break chose among — trace fodder.
[[nodiscard]] std::optional<Dim> choose_preferred(
    const topo::Hypercube& cube, const SafetyLevels& levels, NodeId a,
    std::uint32_t nav, const UnicastOptions& options = {},
    unsigned* ties_out = nullptr);

/// The spare-dimension choice of SUBOPTIMAL_UNICASTING: the clear bit of
/// `nav` whose neighbor has maximal level, provided that level >= H + 1;
/// nullopt otherwise.
[[nodiscard]] std::optional<Dim> choose_spare(const topo::Hypercube& cube,
                                              const SafetyLevels& levels,
                                              NodeId a, std::uint32_t nav,
                                              const UnicastOptions& options =
                                                  {},
                                              unsigned* ties_out = nullptr);

/// ABLATION — "route anyway": skip the C1/C2/C3 feasibility check and
/// greedily forward to the max-level healthy preferred neighbor at every
/// node, getting stuck at dead ends. Quantifies what the source-side
/// check is worth: every delivery here is optimal (only preferred hops),
/// but the message can die mid-route — precisely the unpredictability
/// the paper's feasibility check eliminates. Never used by the real
/// scheme; benches compare salvage rate vs wasted traffic on pairs the
/// checked algorithm refuses.
[[nodiscard]] RouteResult route_unicast_greedy(
    const topo::Hypercube& cube, const fault::FaultSet& faults,
    const SafetyLevels& levels, NodeId s, NodeId d,
    const UnicastOptions& options = {});

}  // namespace slcube::core
