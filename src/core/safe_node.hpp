// The two earlier binary safe/unsafe node classifications the paper
// compares against (Section 2.3):
//
//   Definition 2 (Lee & Hayes [7]):    a nonfaulty node is unsafe iff it
//     has at least two unsafe-or-faulty neighbors.
//   Definition 3 (Wu & Fernandez [10]): a nonfaulty node is unsafe iff it
//     has two faulty neighbors, or at least three unsafe-or-faulty
//     neighbors.
//
// Both are computed as the paper computes them: start from all nonfaulty
// nodes safe and iterate the rule to its (greatest) fixed point. The safe
// set can only shrink, so the iteration terminates; the paper notes the
// worst case needs O(n^2) rounds of neighbor exchange, versus n-1 for
// safety levels — rounds_to_stabilize lets benches measure that gap.
//
// Containment (Section 2.3): for every fault distribution,
//   LH-safe ⊆ WF-safe ⊆ { nodes with safety level n }.
// Theorem 4: in a *disconnected* cube both LH-safe and WF-safe are empty.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_set.hpp"
#include "topology/hypercube.hpp"

namespace slcube::core {

enum class SafeNodeRule : std::uint8_t {
  kLeeHayes,     ///< Definition 2
  kWuFernandez,  ///< Definition 3
};

struct SafeNodeResult {
  /// safe[a] == true iff node a is safe under the rule (faulty => false).
  std::vector<bool> safe;
  /// Number of iterations until the classification stopped changing.
  unsigned rounds_to_stabilize = 0;

  [[nodiscard]] std::uint64_t safe_count() const {
    std::uint64_t c = 0;
    for (const bool s : safe) c += s ? 1u : 0u;
    return c;
  }
  [[nodiscard]] std::vector<NodeId> safe_nodes() const;
};

[[nodiscard]] SafeNodeResult compute_safe_nodes(const topo::Hypercube& cube,
                                                const fault::FaultSet& faults,
                                                SafeNodeRule rule);

}  // namespace slcube::core
