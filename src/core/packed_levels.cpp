#include "core/packed_levels.hpp"

namespace slcube::core {

std::uint64_t packed_digest(const PackedLevels& levels) noexcept {
  // Position-salted xor fold: commutative over words, so bulk writers can
  // be verified regardless of which thread produced which word, yet a
  // level moving between words always changes the digest.
  auto mix = [](std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  std::uint64_t acc = mix(levels.size());
  std::uint64_t i = 0;
  for (const std::uint64_t w : levels.words()) {
    acc ^= mix(w + 0x9e3779b97f4a7c15ull * ++i);
  }
  return acc;
}

}  // namespace slcube::core
