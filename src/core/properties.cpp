#include "core/properties.hpp"

#include <sstream>

#include "analysis/bfs.hpp"
#include "analysis/components.hpp"
#include "common/format.hpp"
#include "core/global_status.hpp"

namespace slcube::core {

std::string check_theorem2(const topo::Hypercube& cube,
                           const fault::FaultSet& faults,
                           const SafetyLevels& levels) {
  const topo::HypercubeView view(cube);
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_faulty(a) || levels[a] == 0) continue;
    const auto dist = analysis::bfs_distances(view, faults, a);
    for (NodeId b = 0; b < cube.num_nodes(); ++b) {
      if (b == a || faults.is_faulty(b)) continue;
      const unsigned h = cube.distance(a, b);
      if (h > levels[a]) continue;
      if (dist[b] != h) {
        std::ostringstream os;
        os << "Theorem 2 violated: node " << to_bits(a, cube.dimension())
           << " has level " << int{levels[a]} << " but no Hamming path to "
           << to_bits(b, cube.dimension()) << " at distance " << h
           << " (BFS distance "
           << (dist[b] == analysis::kUnreachable ? -1 : int(dist[b])) << ")";
        return os.str();
      }
    }
  }
  return {};
}

std::string check_theorem2_gh(const topo::GeneralizedHypercube& gh,
                              const fault::FaultSet& faults,
                              const SafetyLevels& levels) {
  const topo::GeneralizedHypercubeView view(gh);
  for (NodeId a = 0; a < gh.num_nodes(); ++a) {
    if (faults.is_faulty(a) || levels[a] == 0) continue;
    const auto dist = analysis::bfs_distances(view, faults, a);
    for (NodeId b = 0; b < gh.num_nodes(); ++b) {
      if (b == a || faults.is_faulty(b)) continue;
      const unsigned h = gh.distance(a, b);
      if (h > levels[a]) continue;
      if (dist[b] != h) {
        std::ostringstream os;
        os << "Theorem 2' violated: node " << a << " level "
           << int{levels[a]} << " cannot reach node " << b
           << " at coordinate distance " << h;
        return os.str();
      }
    }
  }
  return {};
}

std::vector<unsigned> gs_stabilization_rounds(const topo::Hypercube& cube,
                                              const fault::FaultSet& faults) {
  const unsigned n = cube.dimension();
  SafetyLevels levels(n, cube.num_nodes(), static_cast<Level>(n));
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_faulty(a)) levels[a] = 0;
  }
  std::vector<unsigned> last_change(
      static_cast<std::size_t>(cube.num_nodes()), 0);
  SafetyLevels next = levels;
  for (unsigned round = 1;; ++round) {
    SLC_ASSERT(round <= cube.num_nodes() * n + 1);
    bool changed = false;
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      if (faults.is_faulty(a)) continue;
      next[a] = implied_level(cube, faults, levels, a);
      if (next[a] != levels[a]) {
        last_change[a] = round;
        changed = true;
      }
    }
    if (!changed) break;
    std::swap(levels, next);
  }
  return last_change;
}

std::string check_property1(const topo::Hypercube& cube,
                            const fault::FaultSet& faults) {
  const unsigned n = cube.dimension();
  const SafetyLevels levels = compute_safety_levels(cube, faults);
  const auto rounds = gs_stabilization_rounds(cube, faults);
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_faulty(a)) continue;
    const unsigned bound = levels[a] == n ? n - 1 : levels[a];
    if (rounds[a] > bound) {
      std::ostringstream os;
      os << "Property 1 violated: node " << to_bits(a, n) << " (level "
         << int{levels[a]} << ") stabilized at round " << rounds[a]
         << " > bound " << bound;
      return os.str();
    }
  }
  return {};
}

std::string check_property2(const topo::Hypercube& cube,
                            const fault::FaultSet& faults,
                            const SafetyLevels& levels) {
  const unsigned n = cube.dimension();
  SLC_EXPECT_MSG(faults.count() < n, "Property 2 requires fewer than n faults");
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_faulty(a) || levels.is_safe(a)) continue;
    bool has_safe_neighbor = false;
    cube.for_each_neighbor(a, [&](Dim, NodeId b) {
      has_safe_neighbor |= levels.is_safe(b);
    });
    if (!has_safe_neighbor) {
      std::ostringstream os;
      os << "Property 2 violated: unsafe node " << to_bits(a, n)
         << " (level " << int{levels[a]} << ") has no safe neighbor with "
         << faults.count() << " < " << n << " faults";
      return os.str();
    }
  }
  return {};
}

std::string check_safe_set_containment(const topo::Hypercube& cube,
                                       const fault::FaultSet& faults) {
  const SafetyLevels levels = compute_safety_levels(cube, faults);
  const auto lh = compute_safe_nodes(cube, faults, SafeNodeRule::kLeeHayes);
  const auto wf = compute_safe_nodes(cube, faults, SafeNodeRule::kWuFernandez);
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (lh.safe[a] && !wf.safe[a]) {
      return "containment violated: LH-safe node " +
             to_bits(a, cube.dimension()) + " is not WF-safe";
    }
    if (wf.safe[a] && !levels.is_safe(a)) {
      return "containment violated: WF-safe node " +
             to_bits(a, cube.dimension()) + " is not level-n";
    }
  }
  return {};
}

std::string check_theorem4(const topo::Hypercube& cube,
                           const fault::FaultSet& faults) {
  const topo::HypercubeView view(cube);
  const auto comps = analysis::connected_components(view, faults);
  if (!comps.disconnected()) return {};
  const auto lh = compute_safe_nodes(cube, faults, SafeNodeRule::kLeeHayes);
  const auto wf = compute_safe_nodes(cube, faults, SafeNodeRule::kWuFernandez);
  if (const auto c = wf.safe_count(); c != 0) {
    return "Theorem 4 violated: disconnected cube has " + std::to_string(c) +
           " WF-safe nodes";
  }
  if (const auto c = lh.safe_count(); c != 0) {
    return "Theorem 4 violated: disconnected cube has " + std::to_string(c) +
           " LH-safe nodes";
  }
  return {};
}

}  // namespace slcube::core
