#include "core/safe_node.hpp"

namespace slcube::core {

std::vector<NodeId> SafeNodeResult::safe_nodes() const {
  std::vector<NodeId> out;
  for (NodeId a = 0; a < safe.size(); ++a) {
    if (safe[a]) out.push_back(a);
  }
  return out;
}

SafeNodeResult compute_safe_nodes(const topo::Hypercube& cube,
                                  const fault::FaultSet& faults,
                                  SafeNodeRule rule) {
  const auto num = static_cast<std::size_t>(cube.num_nodes());
  SafeNodeResult result;
  result.safe.assign(num, true);
  for (NodeId a = 0; a < num; ++a) {
    if (faults.is_faulty(a)) result.safe[a] = false;
  }

  auto unsafe_under_rule = [&](NodeId a,
                               const std::vector<bool>& safe) -> bool {
    unsigned faulty_nbrs = 0;
    unsigned unsafe_or_faulty = 0;
    cube.for_each_neighbor(a, [&](Dim, NodeId bnode) {
      faulty_nbrs += faults.is_faulty(bnode) ? 1u : 0u;
      unsafe_or_faulty += !safe[bnode] ? 1u : 0u;
    });
    switch (rule) {
      case SafeNodeRule::kLeeHayes:
        return unsafe_or_faulty >= 2;
      case SafeNodeRule::kWuFernandez:
        return faulty_nbrs >= 2 || unsafe_or_faulty >= 3;
    }
    SLC_UNREACHABLE("bad SafeNodeRule");
  };

  // Synchronous rounds from the all-safe start; the safe set only shrinks,
  // so at most one round per healthy node.
  std::vector<bool> next = result.safe;
  for (;;) {
    bool changed = false;
    for (NodeId a = 0; a < num; ++a) {
      if (faults.is_faulty(a)) continue;
      const bool unsafe = unsafe_under_rule(a, result.safe);
      next[a] = !unsafe;
      changed |= next[a] != result.safe[a];
    }
    if (!changed) break;
    result.safe = next;
    ++result.rounds_to_stabilize;
  }
  return result;
}

}  // namespace slcube::core
