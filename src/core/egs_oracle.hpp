// EgsOracle — a stateful EGS two-view table (Section 4.1) with
// incremental updates for node AND link fault events.
//
// run_egs() rebuilds both views from scratch: one full GS fixed point
// over the pseudo-fault set (real faults ∪ N2) plus one NODE_STATUS pass
// per N2 node. A link-fault sweep pays that again for every sampled
// configuration even though consecutive configurations differ by a
// handful of links. EgsOracle is the Section-4.1 analogue of
// SafetyOracle: the same two views, restored by bounded cascades.
//
// The reduction is the observation run_egs itself is built on: the
// public view is exactly the Theorem-1 fixed point of the pseudo-fault
// set, and a link event only changes that set at its two endpoints
// (each may enter or leave N2). So a link toggle IS a node toggle of
// the pseudo set — at most two of them — and SafetyOracle's monotone
// falling/rising cascades apply unchanged (Theorem 1 gives uniqueness,
// hence bit-identity with run_egs). The self view is a single-round
// derived quantity: self(x) differs from public(x) only on N2 nodes,
// where it is NODE_STATUS over public neighbor levels (faulty-link far
// ends forced to 0). It therefore needs refreshing only at
//   * nodes whose N2 membership or fault state may have moved (the
//     toggled nodes and the endpoints of toggled links), and
//   * nodes whose stored public level moved (SafetyOracle's change
//     log), and N2 nodes adjacent to one of those — the only nodes
//     whose NODE_STATUS inputs moved.
// Everything outside that dirty set provably kept its self level, which
// is what makes the refresh O(dirty · n) instead of O(N · n).
// test_egs_oracle checks bit-identity of both views against run_egs
// after every event of randomized node/link churn.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/egs.hpp"
#include "core/safety_oracle.hpp"

namespace slcube::core {

class EgsOracle {
 public:
  /// One link event: the link between `node` and its dimension-`dim`
  /// neighbor toggles (fails if healthy, recovers if faulty) — the
  /// canonical batch currency of apply().
  struct LinkToggle {
    NodeId node = 0;
    Dim dim = 0;
  };

  /// Fault-free start: no node or link faults, both views at level n.
  explicit EgsOracle(const topo::Hypercube& cube);

  /// Start at the two-view fixed point of an arbitrary configuration
  /// (one full run_egs worth of work).
  EgsOracle(const topo::Hypercube& cube, const fault::FaultSet& faults,
            const fault::LinkFaultSet& link_faults);

  // The pseudo oracle holds a change-log pointer into this object, so
  // moving or copying would leave it dangling.
  EgsOracle(const EgsOracle&) = delete;
  EgsOracle& operator=(const EgsOracle&) = delete;

  [[nodiscard]] const topo::Hypercube& cube() const noexcept { return cube_; }
  /// Real node faults (NOT the pseudo set — N2 nodes are healthy here).
  [[nodiscard]] const fault::FaultSet& faults() const noexcept {
    return faults_;
  }
  [[nodiscard]] const fault::LinkFaultSet& links() const noexcept {
    return links_;
  }

  /// Level of each node as other nodes see it (faulty and N2 => 0).
  [[nodiscard]] const SafetyLevels& public_view() const noexcept {
    return pseudo_.levels();
  }
  /// Level each node uses for itself (differs from public on N2 only).
  [[nodiscard]] const SafetyLevels& self_view() const noexcept {
    return self_view_;
  }
  /// Healthy node `a` has at least one adjacent faulty link.
  [[nodiscard]] bool in_n2(NodeId a) const { return in_n2_[a] != 0; }
  /// Borrowed view pair for decide_at_source_egs / route_unicast_egs.
  [[nodiscard]] EgsViews views() const noexcept {
    return EgsViews{pseudo_.levels(), self_view_};
  }

  /// Healthy node `a` dies. If `a` was in N2 it was already
  /// pseudo-faulty and only the bookkeeping moves; otherwise one falling
  /// cascade restores the public view.
  void add_fault(NodeId a);
  /// Faulty node `a` recovers (possibly straight into N2, when adjacent
  /// faulty links remain).
  void remove_fault(NodeId a);
  /// The healthy link between `a` and its dimension-`d` neighbor fails.
  void fail_link(NodeId a, Dim d);
  /// The faulty link between `a` and its dimension-`d` neighbor heals.
  void recover_link(NodeId a, Dim d);

  /// Batched update: every listed node toggles its fault state and every
  /// listed link toggles its link-fault state, then both views are
  /// restored once — cheaper than one cascade per event and still
  /// bit-identical to run_egs on the resulting configuration.
  void apply(std::span<const NodeId> node_toggles,
             std::span<const LinkToggle> link_toggles);

  /// Move to an arbitrary configuration by toggling both symmetric
  /// differences — the sweep-engine entry point. Inherits SafetyOracle's
  /// rebuild fallback: a large pseudo delta triggers one from-scratch
  /// GS, whose change log covers every node and forces a full self-view
  /// resync, so retarget is never asymptotically worse than run_egs.
  void retarget(const fault::FaultSet& target_faults,
                const fault::LinkFaultSet& target_links);

  /// Work counters since construction (EXPERIMENTS.md cost model).
  struct Stats {
    std::uint64_t node_events = 0;      ///< node toggles applied
    std::uint64_t link_events = 0;      ///< link toggles applied
    std::uint64_t n2_enters = 0;        ///< healthy nodes gaining N2 status
    std::uint64_t n2_exits = 0;         ///< nodes losing N2 status
    std::uint64_t self_refreshes = 0;   ///< dirty self-view entries rewritten
    std::uint64_t self_recomputes = 0;  ///< of those, NODE_STATUS evaluations
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Cascade counters of the underlying public-view oracle.
  [[nodiscard]] const SafetyOracle::Stats& pseudo_stats() const noexcept {
    return pseudo_.stats();
  }

 private:
  /// Recompute in_n2_ / self cache bookkeeping around one batch: toggle
  /// state, drive the pseudo oracle, then refresh the dirty self views.
  void apply_toggles(std::span<const NodeId> node_toggles,
                     std::span<const LinkToggle> link_toggles);
  /// Mark `a` dirty (dedup via dirty_mark_).
  void mark_dirty(NodeId a);
  /// Current self level of `a` from the (already updated) public view.
  [[nodiscard]] Level self_level_of(NodeId a);

  topo::Hypercube cube_;
  fault::FaultSet faults_;
  fault::LinkFaultSet links_;
  /// Public view: Theorem-1 oracle over the pseudo set faults_ ∪ N2.
  SafetyOracle pseudo_;
  SafetyLevels self_view_;
  std::vector<std::uint8_t> in_n2_;
  /// Pseudo-oracle change log (registered once, cleared per batch).
  std::vector<NodeId> changed_;
  /// Scratch for apply_toggles: dirty list + membership stamps.
  std::vector<NodeId> dirty_;
  std::vector<std::uint8_t> dirty_mark_;
  Stats stats_;
};

}  // namespace slcube::core
