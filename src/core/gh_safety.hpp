// Section 4.2: safety levels and unicasting in generalized hypercubes
// (Definition 4, EXTENDED_NODE_STATUS, Theorem 2').
//
// In GH_n every dimension i is a complete graph on m_i nodes, so one hop
// fixes one coordinate and the distance between two nodes is the number
// of differing coordinates. A node's status vector has one entry per
// *dimension*: S_i = min level over the m_i - 1 neighbors along dimension
// i. The sorted vector feeds the same NODE_STATUS kernel as the binary
// cube, so levels still range 0..n where n is the number of dimensions.
//
// Theorem 2': level k guarantees an optimal path to every node differing
// in at most k coordinates. Routing mirrors Section 3 exactly; the only
// twist is that the *preferred neighbor* along a differing dimension is
// the specific node carrying the destination's coordinate, while every
// node along a matching dimension is a *spare neighbor*.
//
// Errata (DESIGN.md #2 and #5): the paper calls 010→020→021→121→101 an
// "optimal" path of its Fig. 5 although its length exceeds the coordinate
// distance, and annotates node 001 with level 1 although Definition 4's
// fixed point gives 3 (tests pin the computed fixed point and verify
// Theorem 2' against BFS ground truth).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/path.hpp"
#include "core/safety.hpp"
#include "core/unicast.hpp"
#include "topology/generalized_hypercube.hpp"

namespace slcube::core {

struct GhGsResult {
  SafetyLevels levels;  ///< dimension() is the number of GH dimensions
  unsigned rounds_to_stabilize = 0;
  std::vector<std::uint64_t> changes_per_round;
};

/// Level Definition 4 implies for healthy node `a` from current levels.
[[nodiscard]] Level implied_level_gh(const topo::GeneralizedHypercube& gh,
                                     const fault::FaultSet& faults,
                                     const SafetyLevels& levels, NodeId a);

/// Synchronous GS over the generalized hypercube (each round a node needs
/// one value per dimension — the dimension minimum — which the fully
/// connected dimension provides in a single exchange step).
[[nodiscard]] GhGsResult run_gs_gh(const topo::GeneralizedHypercube& gh,
                                   const fault::FaultSet& faults);

/// Definition-4 consistency predicate.
[[nodiscard]] bool is_consistent_gh(const topo::GeneralizedHypercube& gh,
                                    const fault::FaultSet& faults,
                                    const SafetyLevels& levels);

/// Source feasibility: C1/C2/C3 with GH preferred/spare neighbor sets.
[[nodiscard]] SourceDecision decide_at_source_gh(
    const topo::GeneralizedHypercube& gh, const SafetyLevels& levels,
    NodeId s, NodeId d);

/// Route one unicast in the faulty GH. Endpoints must be healthy.
[[nodiscard]] RouteResult route_unicast_gh(
    const topo::GeneralizedHypercube& gh, const fault::FaultSet& faults,
    const SafetyLevels& levels, NodeId s, NodeId d,
    const UnicastOptions& options = {});

}  // namespace slcube::core
