#include "core/safety_oracle.hpp"
#include "obs/profiler.hpp"

namespace slcube::core {

SafetyOracle::SafetyOracle(const topo::Hypercube& cube)
    : cube_(cube),
      faults_(cube.num_nodes()),
      levels_(cube.dimension(), cube.num_nodes(),
              static_cast<Level>(cube.dimension())),
      queued_(static_cast<std::size_t>(cube.num_nodes()), 0) {}

SafetyOracle::SafetyOracle(const topo::Hypercube& cube,
                           const fault::FaultSet& faults,
                           unsigned build_threads)
    : cube_(cube),
      faults_(faults),
      levels_(compute_safety_levels(cube, faults, build_threads)),
      queued_(static_cast<std::size_t>(cube.num_nodes()), 0) {
  SLC_EXPECT(faults.num_nodes() == cube.num_nodes());
}

void SafetyOracle::push(NodeId a) {
  if (queued_[a] == 0 && faults_.is_healthy(a)) {
    queued_[a] = 1;
    worklist_.push_back(a);
  }
}

void SafetyOracle::cascade() {
  const obs::StageScope stage("oracle.cascade");
  // Safety valve: in one monotone phase each healthy node changes level
  // at most n times and is re-enqueued at most once per change of one of
  // its n inputs.
  const std::uint64_t hard_cap =
      cube_.num_nodes() * (cube_.dimension() + 1) * cube_.dimension() + 1;
  std::uint64_t steps = 0;
  while (!worklist_.empty()) {
    SLC_ASSERT_MSG(++steps <= hard_cap, "oracle cascade failed to converge");
    const NodeId a = worklist_.back();
    worklist_.pop_back();
    queued_[a] = 0;
    if (faults_.is_faulty(a)) continue;  // died while queued (batch adds)
    const Level updated = implied_level(cube_, faults_, levels_, a);
    ++stats_.recomputes;
    if (updated == levels_[a]) continue;
    levels_[a] = updated;
    if (change_log_ != nullptr) change_log_->push_back(a);
    ++stats_.level_changes;
    cube_.for_each_neighbor(a, [&](Dim, NodeId b) { push(b); });
  }
  ++stats_.cascades;
}

void SafetyOracle::add_fault(NodeId a) {
  SLC_EXPECT_MSG(faults_.is_healthy(a), "add_fault on an already-faulty node");
  faults_.mark_faulty(a);
  levels_[a] = 0;
  if (change_log_ != nullptr) change_log_->push_back(a);
  cube_.for_each_neighbor(a, [&](Dim, NodeId b) { push(b); });
  cascade();
}

void SafetyOracle::remove_fault(NodeId a) {
  SLC_EXPECT_MSG(faults_.is_faulty(a), "remove_fault on a healthy node");
  faults_.mark_healthy(a);
  // The newcomer still holds level 0, which is exactly what its
  // neighbors' implied levels already price in (faulty nodes read 0),
  // so the state sits pointwise below the new fixed point and the
  // cascade rises monotonically from the newcomer outward.
  push(a);
  cube_.for_each_neighbor(a, [&](Dim, NodeId b) { push(b); });
  cascade();
}

void SafetyOracle::apply(const fault::FaultSet& delta) {
  const obs::StageScope stage("oracle.apply");
  SLC_EXPECT(delta.num_nodes() == faults_.num_nodes());
  if (delta.empty()) return;
  // Falling phase: all additions at once, then one cascade. The
  // partitions live in member arenas — apply() runs once per churn event
  // in sweep loops, and per-call allocations thrash at mega-cube sizes.
  std::vector<NodeId>& additions = additions_scratch_;
  std::vector<NodeId>& removals = removals_scratch_;
  additions.clear();
  removals.clear();
  delta.for_each_faulty([&](NodeId a) {
    (faults_.is_healthy(a) ? additions : removals).push_back(a);
  });
  if (!additions.empty()) {
    for (const NodeId a : additions) {
      faults_.mark_faulty(a);
      levels_[a] = 0;
      if (change_log_ != nullptr) change_log_->push_back(a);
    }
    for (const NodeId a : additions) {
      cube_.for_each_neighbor(a, [&](Dim, NodeId b) { push(b); });
    }
    cascade();
  }
  // Rising phase: all removals at once, then one cascade.
  if (!removals.empty()) {
    for (const NodeId a : removals) faults_.mark_healthy(a);
    for (const NodeId a : removals) {
      push(a);
      cube_.for_each_neighbor(a, [&](Dim, NodeId b) { push(b); });
    }
    cascade();
  }
}

void SafetyOracle::retarget(const fault::FaultSet& target) {
  const obs::StageScope stage("oracle.retarget");
  SLC_EXPECT(target.num_nodes() == faults_.num_nodes());
  if (target == faults_) return;
  // Word-at-a-time symmetric difference into the reusable scratch set:
  // O(N/64) xor+popcount instead of N is_faulty probes and a fresh
  // allocation per retarget — the sweep-engine entry point runs this
  // once per trial.
  if (delta_scratch_.num_nodes() != faults_.num_nodes()) {
    delta_scratch_ = fault::FaultSet(faults_.num_nodes());
  } else {
    delta_scratch_.clear();
  }
  fault::FaultSet& delta = delta_scratch_;
  std::uint64_t delta_count = 0;
  const auto& have = faults_.words();
  const auto& want = target.words();
  for (std::size_t w = 0; w < have.size(); ++w) {
    std::uint64_t x = have[w] ^ want[w];
    delta_count += bits::popcount64(x);
    bits::for_each_set64(x, [&](unsigned b) {
      delta.mark_faulty(static_cast<NodeId>(w * 64 + b));
    });
  }
  // Past the cost-model crossover, rebuild — same fixed point either
  // way. Accounting contract: the fallback bumps `rebuilds` only; the
  // cascade counters (recomputes/level_changes/cascades) keep counting
  // incremental work exclusively, so cost-model consumers can compare
  // the two strategies without the rebuild polluting the cascade side.
  if (retarget_prefers_rebuild(delta_count, cube_.num_nodes())) {
    faults_ = target;
    levels_ = compute_safety_levels(cube_, faults_);
    ++stats_.rebuilds;
    if (change_log_ != nullptr) {
      // The whole table was rewritten; report every node as changed so
      // log consumers resync fully (a rebuild is already O(N·n) work).
      for (NodeId a = 0; a < cube_.num_nodes(); ++a) {
        change_log_->push_back(a);
      }
    }
    return;
  }
  apply(delta);
}

}  // namespace slcube::core
