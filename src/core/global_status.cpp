#include "core/global_status.hpp"

namespace slcube::core {

GsResult run_gs(const topo::Hypercube& cube, const fault::FaultSet& faults,
                const GsOptions& options) {
  const unsigned n = cube.dimension();
  GsResult result;
  result.levels = SafetyLevels(
      n, cube.num_nodes(),
      options.pessimistic_start ? Level{0} : static_cast<Level>(n));
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_faulty(a)) result.levels[a] = 0;
  }

  // Synchronous rounds: every healthy node recomputes from the previous
  // round's snapshot (the paper's parbegin/parend). From the optimistic
  // start levels only fall; from the pessimistic start only rise; either
  // way the monotone kernel reaches the unique fixed point of Theorem 1.
  SafetyLevels next = result.levels;
  // Safety valve far above any possible stabilization time: each healthy
  // node changes at most n times and every non-final round changes at
  // least one node.
  const std::uint64_t hard_cap = cube.num_nodes() * n + 1;
  for (std::uint64_t round = 1;; ++round) {
    if (options.max_rounds != 0 && round > options.max_rounds) break;
    SLC_ASSERT_MSG(round <= hard_cap, "GS failed to converge");
    std::uint64_t changed = 0;
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      if (faults.is_faulty(a)) continue;
      const Level updated = implied_level(cube, faults, result.levels, a);
      next[a] = updated;
      changed += updated != result.levels[a] ? 1u : 0u;
    }
    if (changed == 0) {
      result.stabilized = true;
      break;
    }
    std::swap(result.levels, next);
    result.changes_per_round.push_back(changed);
  }
  result.rounds_to_stabilize =
      static_cast<unsigned>(result.changes_per_round.size());
  if (result.stabilized) {
    SLC_ENSURE_MSG(is_consistent(cube, faults, result.levels),
                   "stabilized GS must satisfy Definition 1");
  }
  return result;
}

SafetyLevels compute_safety_levels(const topo::Hypercube& cube,
                                   const fault::FaultSet& faults) {
  return run_gs(cube, faults).levels;
}

}  // namespace slcube::core
