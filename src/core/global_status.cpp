#include "core/global_status.hpp"

#include <memory>

#include "common/thread_pool.hpp"

namespace slcube::core {

namespace {

/// One synchronous round over [begin, end): recompute every healthy
/// node's level from the previous-round snapshot `cur` into `next`.
/// Returns how many nodes changed. Ranges are packed-word-aligned at the
/// call site, so writes through `next` never share a word across chunks.
std::uint64_t round_over_range(const topo::Hypercube& cube,
                               const fault::FaultSet& faults,
                               const SafetyLevels& cur, SafetyLevels& next,
                               NodeId begin, NodeId end) {
  std::uint64_t changed = 0;
  for (NodeId a = begin; a < end; ++a) {
    if (faults.is_faulty(a)) continue;
    const Level updated = implied_level(cube, faults, cur, a);
    next.set(a, updated);
    changed += updated != cur[a] ? 1u : 0u;
  }
  return changed;
}

}  // namespace

GsResult run_gs(const topo::Hypercube& cube, const fault::FaultSet& faults,
                const GsOptions& options) {
  const unsigned n = cube.dimension();
  GsResult result;
  result.levels = SafetyLevels(
      n, cube.num_nodes(),
      options.pessimistic_start ? Level{0} : static_cast<Level>(n));
  for (const NodeId a : faults.faulty_nodes()) result.levels[a] = 0;

  // Cache-blocked parallel rounds: the pool is built once and reused for
  // every round; each round is a barrier (parallel_for_aligned returns
  // only when all chunks finished), which is what keeps the synchronous
  // parbegin/parend semantics — and therefore bit-identity with the
  // serial loop — at any worker count.
  std::unique_ptr<ThreadPool> pool;
  if (options.threads != 1) {
    pool = std::make_unique<ThreadPool>(options.threads);
  }
  const auto num_nodes = static_cast<std::size_t>(cube.num_nodes());

  // Synchronous rounds: every healthy node recomputes from the previous
  // round's snapshot (the paper's parbegin/parend). From the optimistic
  // start levels only fall; from the pessimistic start only rise; either
  // way the monotone kernel reaches the unique fixed point of Theorem 1.
  SafetyLevels next = result.levels;
  // Safety valve far above any possible stabilization time: each healthy
  // node changes at most n times and every non-final round changes at
  // least one node.
  const std::uint64_t hard_cap = cube.num_nodes() * n + 1;
  for (std::uint64_t round = 1;; ++round) {
    if (options.max_rounds != 0 && round > options.max_rounds) break;
    SLC_ASSERT_MSG(round <= hard_cap, "GS failed to converge");
    std::uint64_t changed = 0;
    if (pool == nullptr) {
      changed = round_over_range(cube, faults, result.levels, next, 0,
                                 static_cast<NodeId>(num_nodes));
    } else {
      std::vector<std::uint64_t> chunk_changed(
          std::max<std::size_t>(1, pool->size()), 0);
      parallel_for_aligned(
          *pool, num_nodes, PackedLevels::kLevelsPerWord,
          [&](std::size_t chunk, std::size_t begin, std::size_t end) {
            chunk_changed[chunk] =
                round_over_range(cube, faults, result.levels, next,
                                 static_cast<NodeId>(begin),
                                 static_cast<NodeId>(end));
          });
      for (const std::uint64_t c : chunk_changed) changed += c;
    }
    if (changed == 0) {
      result.stabilized = true;
      break;
    }
    std::swap(result.levels, next);
    result.changes_per_round.push_back(changed);
  }
  result.rounds_to_stabilize =
      static_cast<unsigned>(result.changes_per_round.size());
  if (result.stabilized) {
    SLC_ENSURE_MSG(is_consistent(cube, faults, result.levels),
                   "stabilized GS must satisfy Definition 1");
  }
  return result;
}

SafetyLevels compute_safety_levels(const topo::Hypercube& cube,
                                   const fault::FaultSet& faults,
                                   unsigned threads) {
  GsOptions options;
  options.threads = threads;
  return run_gs(cube, faults, options).levels;
}

}  // namespace slcube::core
