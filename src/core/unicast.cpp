#include "core/unicast.hpp"
#include "obs/profiler.hpp"

#include <array>

namespace slcube::core {

const char* to_string(RouteStatus s) {
  switch (s) {
    case RouteStatus::kDeliveredOptimal:
      return "delivered-optimal";
    case RouteStatus::kDeliveredSuboptimal:
      return "delivered-suboptimal";
    case RouteStatus::kSourceRefused:
      return "source-refused";
    case RouteStatus::kStuck:
      return "stuck";
  }
  SLC_UNREACHABLE("bad RouteStatus");
}

namespace {

/// Among the dimensions selected from `nav` by ForEach, find those whose
/// neighbor level is maximal; break ties by option. Returns nullopt when
/// the maximal level is 0 (all candidates faulty) or there are none.
template <typename ForEach>
std::optional<Dim> argmax_level(const UnicastOptions& options,
                                unsigned* ties_out, ForEach&& for_each) {
  std::array<Dim, topo::Hypercube::kMaxDimension> best{};
  std::size_t ties = 0;
  int best_level = 0;  // level 0 == faulty is never a valid choice
  for_each([&](Dim d, Level level) {
    if (static_cast<int>(level) > best_level) {
      best_level = level;
      best[0] = d;
      ties = 1;
    } else if (level == best_level && best_level > 0) {
      best[ties++] = d;
    }
  });
  if (ties_out != nullptr) *ties_out = static_cast<unsigned>(ties);
  if (ties == 0) return std::nullopt;
  if (options.tie_break == TieBreak::kLowestDim || ties == 1) {
    return best[0];  // candidates are generated low-dimension-first
  }
  SLC_EXPECT_MSG(options.rng != nullptr,
                 "TieBreak::kRandom requires UnicastOptions::rng");
  return best[options.rng->below(ties)];
}

/// Trace helpers — only reached when a sink is attached.
void emit_source(obs::TraceSink* trace, const SourceDecision& dec, NodeId s,
                 NodeId d, int chosen_dim, unsigned ties, bool spare) {
  obs::SourceDecisionEvent ev;
  ev.source = s;
  ev.dest = d;
  ev.hamming = dec.hamming;
  ev.c1 = dec.c1;
  ev.c2 = dec.c2;
  ev.c3 = dec.c3;
  ev.chosen_dim = chosen_dim;
  ev.ties = ties;
  ev.spare = spare;
  trace->on_event(ev);
}

void emit_done(obs::TraceSink* trace, NodeId s, NodeId d, RouteStatus status,
               unsigned hops) {
  obs::RouteDoneEvent ev;
  ev.source = s;
  ev.dest = d;
  ev.status = to_string(status);
  ev.hops = hops;
  trace->on_event(ev);
}

void emit_hop(obs::TraceSink* trace, NodeId from, NodeId to, Dim dim,
              Level level, std::uint32_t nav_before, std::uint32_t nav_after,
              bool preferred, unsigned ties) {
  obs::HopEvent ev;
  ev.from = from;
  ev.to = to;
  ev.dim = dim;
  ev.level = level;
  ev.nav_before = nav_before;
  ev.nav_after = nav_after;
  ev.preferred = preferred;
  ev.ties = ties;
  trace->on_event(ev);
}

}  // namespace

SourceDecision decide_at_source(const topo::Hypercube& cube,
                                const SafetyLevels& levels, NodeId s,
                                NodeId d) {
  SourceDecision dec;
  const std::uint32_t nav = cube.navigation_vector(s, d);
  dec.hamming = bits::popcount(nav);
  if (dec.hamming == 0) {  // s == d: trivially "optimal", nothing to send
    dec.c1 = true;
    return dec;
  }
  dec.c1 = levels[s] >= dec.hamming;
  cube.for_each_preferred(s, nav, [&](Dim, NodeId b) {
    dec.c2 |= levels[b] + 1u >= dec.hamming;  // level >= H - 1, unsigned-safe
  });
  cube.for_each_spare(s, nav, [&](Dim, NodeId b) {
    dec.c3 |= levels[b] >= dec.hamming + 1u;
  });
  return dec;
}

std::optional<Dim> choose_preferred(const topo::Hypercube& cube,
                                    const SafetyLevels& levels, NodeId a,
                                    std::uint32_t nav,
                                    const UnicastOptions& options,
                                    unsigned* ties_out) {
  return argmax_level(options, ties_out, [&](auto&& visit) {
    cube.for_each_preferred(a, nav,
                            [&](Dim d, NodeId b) { visit(d, levels[b]); });
  });
}

std::optional<Dim> choose_spare(const topo::Hypercube& cube,
                                const SafetyLevels& levels, NodeId a,
                                std::uint32_t nav,
                                const UnicastOptions& options,
                                unsigned* ties_out) {
  const unsigned h = bits::popcount(nav);
  const auto pick = argmax_level(options, ties_out, [&](auto&& visit) {
    cube.for_each_spare(a, nav,
                        [&](Dim d, NodeId b) { visit(d, levels[b]); });
  });
  if (!pick) return std::nullopt;
  if (levels[cube.neighbor(a, *pick)] < h + 1u) return std::nullopt;
  return pick;
}

RouteResult route_unicast(const topo::Hypercube& cube,
                          const fault::FaultSet& faults,
                          const SafetyLevels& levels, NodeId s, NodeId d,
                          const UnicastOptions& options) {
  const obs::StageScope stage("route");
  SLC_EXPECT_MSG(faults.is_healthy(s), "unicast source must be healthy");
  SLC_EXPECT_MSG(faults.is_healthy(d), "unicast destination must be healthy");
  SLC_EXPECT(levels.size() == cube.num_nodes());

  obs::TraceSink* const trace = options.trace;
  RouteResult result;
  result.decision = decide_at_source(cube, levels, s, d);
  result.path.push_back(s);

  std::uint32_t nav = cube.navigation_vector(s, d);
  if (nav == 0) {  // s == d
    result.status = RouteStatus::kDeliveredOptimal;
    if (trace != nullptr) {
      emit_source(trace, result.decision, s, d, -1, 0, false);
      emit_done(trace, s, d, result.status, 0);
    }
    return result;
  }

  NodeId cur = s;
  bool suboptimal = false;
  // The source event wants the chosen first-hop dimension, which for the
  // optimal case is only known inside the forwarding loop below — emit
  // lazily at the first hop so the untraced path stays branch-identical
  // (and kRandom's RNG sequence is never perturbed by a traced peek).
  bool source_emitted = false;
  if (!result.decision.optimal_feasible()) {
    if (!result.decision.c3) {
      result.status = RouteStatus::kSourceRefused;
      if (trace != nullptr) {
        emit_source(trace, result.decision, s, d, -1, 0, false);
        emit_done(trace, s, d, result.status, 0);
      }
      return result;
    }
    // SUBOPTIMAL_UNICASTING: one detour hop along the best spare
    // dimension; its navigation bit is set so it gets corrected later.
    unsigned ties = 0;
    const auto spare =
        choose_spare(cube, levels, cur, nav, options,
                     trace != nullptr ? &ties : nullptr);
    SLC_ASSERT_MSG(spare.has_value(), "C3 held but no spare qualified");
    const NodeId detour = cube.neighbor(cur, *spare);
    if (trace != nullptr) {
      emit_source(trace, result.decision, s, d, static_cast<int>(*spare),
                  ties, true);
      source_emitted = true;
      emit_hop(trace, cur, detour, *spare, levels[detour], nav,
               nav | bits::unit(*spare), false, ties);
    }
    cur = detour;
    nav |= bits::unit(*spare);
    result.path.push_back(cur);
    suboptimal = true;
  }

  // UNICASTING_AT_INTERMEDIATE_NODE, repeated until the navigation vector
  // empties. Each hop clears one bit, so this loop runs popcount(nav)
  // times unless the level table is inconsistent and we get stuck. The
  // untraced loop is kept free of any tracing bookkeeping — it is the
  // throughput-critical path of every sweep bench.
  if (trace == nullptr) {
    while (nav != 0) {
      const auto next = choose_preferred(cube, levels, cur, nav, options);
      if (!next) {
        result.status = RouteStatus::kStuck;
        return result;
      }
      cur = cube.neighbor(cur, *next);
      nav &= ~bits::unit(*next);
      result.path.push_back(cur);
    }
  } else {
    while (nav != 0) {
      unsigned ties = 0;
      const auto next =
          choose_preferred(cube, levels, cur, nav, options, &ties);
      if (!next) {
        result.status = RouteStatus::kStuck;
        if (!source_emitted) {
          emit_source(trace, result.decision, s, d, -1, 0, false);
        }
        emit_done(trace, s, d, result.status, result.hops());
        return result;
      }
      const NodeId to = cube.neighbor(cur, *next);
      if (!source_emitted) {
        emit_source(trace, result.decision, s, d, static_cast<int>(*next),
                    ties, false);
        source_emitted = true;
      }
      emit_hop(trace, cur, to, *next, levels[to], nav,
               nav & ~bits::unit(*next), true, ties);
      cur = to;
      nav &= ~bits::unit(*next);
      result.path.push_back(cur);
    }
  }

  SLC_ASSERT(cur == d);
  result.status = suboptimal ? RouteStatus::kDeliveredSuboptimal
                             : RouteStatus::kDeliveredOptimal;
  if (trace != nullptr) emit_done(trace, s, d, result.status, result.hops());
  return result;
}

RouteResult route_unicast_greedy(const topo::Hypercube& cube,
                                 const fault::FaultSet& faults,
                                 const SafetyLevels& levels, NodeId s,
                                 NodeId d, const UnicastOptions& options) {
  const obs::StageScope stage("route.greedy");
  SLC_EXPECT_MSG(faults.is_healthy(s), "unicast source must be healthy");
  SLC_EXPECT_MSG(faults.is_healthy(d), "unicast destination must be healthy");
  obs::TraceSink* const trace = options.trace;
  RouteResult result;
  result.decision = decide_at_source(cube, levels, s, d);
  result.path.push_back(s);
  std::uint32_t nav = cube.navigation_vector(s, d);
  NodeId cur = s;
  bool source_emitted = false;
  if (trace == nullptr) {
    while (nav != 0) {
      const auto next = choose_preferred(cube, levels, cur, nav, options);
      if (!next) {
        result.status = RouteStatus::kStuck;
        return result;
      }
      cur = cube.neighbor(cur, *next);
      nav &= ~bits::unit(*next);
      result.path.push_back(cur);
    }
  } else {
    while (nav != 0) {
      unsigned ties = 0;
      const auto next =
          choose_preferred(cube, levels, cur, nav, options, &ties);
      if (!next) {
        result.status = RouteStatus::kStuck;
        if (!source_emitted) {
          emit_source(trace, result.decision, s, d, -1, 0, false);
        }
        emit_done(trace, s, d, result.status, result.hops());
        return result;
      }
      const NodeId to = cube.neighbor(cur, *next);
      if (!source_emitted) {
        emit_source(trace, result.decision, s, d, static_cast<int>(*next),
                    ties, false);
        source_emitted = true;
      }
      emit_hop(trace, cur, to, *next, levels[to], nav,
               nav & ~bits::unit(*next), true, ties);
      cur = to;
      nav &= ~bits::unit(*next);
      result.path.push_back(cur);
    }
  }
  result.status = RouteStatus::kDeliveredOptimal;
  if (trace != nullptr) {
    if (!source_emitted) {
      emit_source(trace, result.decision, s, d, -1, 0, false);
    }
    emit_done(trace, s, d, result.status, result.hops());
  }
  return result;
}

}  // namespace slcube::core
