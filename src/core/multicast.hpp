// EXTENSION — safety-level multicast (one-to-many unicast merging).
//
// Multicasting in faulty hypercubes is the natural companion problem to
// the paper's unicast (and the subject of follow-on work in the same
// research line). This module implements the direct generalization of
// Section 3: a multicast message carries a destination SET; at each node
// the set is partitioned among preferred dimensions — every destination
// is assigned to a dimension that lies on one of its optimal paths,
// preferring dimensions whose neighbor has a high safety level and
// packing destinations together to minimize branching (traffic).
//
// Per-destination guarantees are inherited from Theorem 2: a destination
// d with H(cur, d) <= level of the chosen forwarding neighbor + 1 stays
// on an optimal path. Destinations whose source-side check fails are
// reported as refused up front, exactly like the unicast's C1/C2/C3 (we
// apply the check per destination; a refused destination never generates
// traffic).
//
// The quality metric is TRAFFIC: total hops of the multicast tree versus
// Σ (unicast hops) when each destination is served separately —
// bench_multicast measures the savings.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/path.hpp"
#include "core/safety.hpp"
#include "core/unicast.hpp"

namespace slcube::core {

struct MulticastResult {
  /// Destinations delivered, in the order given.
  std::vector<bool> delivered;
  /// Destinations refused at the source (no C1/C2 guarantee; the
  /// multicast generalization uses optimal forwarding only — a refused
  /// destination can still be served by a separate suboptimal unicast).
  std::vector<bool> refused;
  /// Total message-hops of the multicast tree.
  std::uint64_t traffic = 0;
  /// Edges of the tree as (from, to) pairs, for inspection/validation.
  std::vector<std::pair<NodeId, NodeId>> edges;

  [[nodiscard]] std::uint64_t delivered_count() const {
    std::uint64_t c = 0;
    for (const bool b : delivered) c += b ? 1u : 0u;
    return c;
  }
};

/// Multicast `m` from healthy `source` to the healthy `destinations`.
[[nodiscard]] MulticastResult multicast(const topo::Hypercube& cube,
                                        const fault::FaultSet& faults,
                                        const SafetyLevels& levels,
                                        NodeId source,
                                        const std::vector<NodeId>& destinations);

}  // namespace slcube::core
