// SafetyOracle — a stateful safety-level table with incremental updates.
//
// compute_safety_levels() rebuilds the whole Theorem-1 fixed point from
// scratch: O(rounds · N · n) work per fault set, paid again for every
// sampled configuration of a sweep. But the paper's own state-change
// discipline (Section 2.2, run as message traffic by
// sim/protocol_gs.cpp's recompute-and-cascade kernel) shows that a
// single fault event only perturbs levels along a bounded monotone
// cascade: seed the changed node's neighborhood, recompute a node only
// when one of its inputs actually moved. SafetyOracle is the static-core
// analogue of that discipline — same fixed point, no messages.
//
// Correctness rests on two facts:
//  * node_status is monotone in its inputs, so after marking new faults
//    (levels forced to 0) every recomputation can only LOWER a level,
//    and after marking recoveries (rejoining at 0, pointwise below the
//    new fixed point) every recomputation can only RAISE one. Each
//    monotone phase therefore terminates — a level moves at most n
//    times — which is why apply() splits a mixed batch into a falling
//    phase (all additions) and a rising phase (all removals).
//  * Theorem 1: the consistent assignment is unique. Any quiescent
//    state (every healthy node equals its implied level) IS the from-
//    scratch fixed point, so incremental results are bit-identical to
//    compute_safety_levels — which test_safety_oracle verifies over
//    randomized add/remove interleavings.
#pragma once

#include <cstdint>
#include <vector>

#include "core/global_status.hpp"
#include "core/safety.hpp"

namespace slcube::core {

/// Retarget cost model (measured; EXPERIMENTS.md "Incremental oracle
/// cost model"): a cascade costs roughly this many node_status
/// recomputes per toggled node, while a from-scratch GS costs a few
/// sweeps over all N nodes — so incremental retargeting only wins below
/// about N / kRetargetRebuildFactor toggles.
inline constexpr std::uint64_t kRetargetRebuildFactor = 48;

/// The shared fallback predicate: both SafetyOracle::retarget and
/// EgsOracle's batched update take the from-scratch rebuild iff this
/// holds for their delta (node toggles for the former, pseudo-set
/// toggles for the latter). EgsOracle hands its rebuild to
/// SafetyOracle::retarget with exactly that pseudo delta, so sharing the
/// predicate is what guarantees the inner retarget takes the rebuild
/// branch it was promised — keep every call site on this function.
[[nodiscard]] constexpr bool retarget_prefers_rebuild(
    std::uint64_t delta_count, std::uint64_t num_nodes) noexcept {
  return delta_count * kRetargetRebuildFactor >= num_nodes;
}

class SafetyOracle {
 public:
  /// Fault-free start: every node at the fixed-point level n.
  explicit SafetyOracle(const topo::Hypercube& cube);

  /// Start at the fixed point of an arbitrary fault set (one full GS).
  /// `build_threads` parallelizes that initial scratch build only
  /// (GsOptions::threads semantics); every later cascade is serial and
  /// the fixed point is identical for every value.
  SafetyOracle(const topo::Hypercube& cube, const fault::FaultSet& faults,
               unsigned build_threads = 1);

  [[nodiscard]] const topo::Hypercube& cube() const noexcept { return cube_; }
  [[nodiscard]] const fault::FaultSet& faults() const noexcept {
    return faults_;
  }
  /// The current Theorem-1 fixed point for faults().
  [[nodiscard]] const SafetyLevels& levels() const noexcept { return levels_; }

  /// Healthy node `a` dies; the falling cascade restores the fixed point.
  void add_fault(NodeId a);

  /// Faulty node `a` recovers; the rising cascade restores the fixed
  /// point (the node rejoins at 0 — see Network::recover_node for why
  /// pessimism is what makes the rejoin monotone).
  void remove_fault(NodeId a);

  /// Batched update: every node set in `delta` toggles its fault state.
  /// Additions are applied first (one falling cascade), then removals
  /// (one rising cascade) — cheaper than n single-node cascades and
  /// still bit-identical to a from-scratch recomputation.
  void apply(const fault::FaultSet& delta);

  /// Move to an arbitrary new fault set by applying the symmetric
  /// difference with the current one — the sweep-engine entry point.
  /// When the difference is small (an evolving machine) the cascades are
  /// far below a full rebuild; when it is large (independent samples),
  /// retarget falls back to a from-scratch recomputation, so it is never
  /// asymptotically worse than compute_safety_levels.
  void retarget(const fault::FaultSet& target);

  /// Work counters since construction (cost-model instrumentation; see
  /// EXPERIMENTS.md "Incremental oracle cost model"). Accounting
  /// contract: the first three count *incremental* cascade work only —
  /// a retarget that hits the rebuild fallback bumps `rebuilds` and
  /// nothing else, and a retarget to the current fault set is a free
  /// no-op (no counter moves, no change-log entries).
  struct Stats {
    std::uint64_t recomputes = 0;     ///< node_status evaluations
    std::uint64_t level_changes = 0;  ///< recomputations that moved a level
    std::uint64_t cascades = 0;       ///< monotone phases drained
    std::uint64_t rebuilds = 0;       ///< retargets that hit the fallback
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// When non-null, the id of every node whose *stored* level moves is
  /// appended: cascade updates, the forced zeroes of new faults, and —
  /// after a retarget rebuild fallback — every node (the whole table was
  /// rewritten). Duplicates are possible; the caller owns clearing the
  /// vector between batches. This is the delta feed EgsOracle uses to
  /// resync the EGS self view without rescanning the cube.
  void set_change_log(std::vector<NodeId>* log) noexcept { change_log_ = log; }

 private:
  /// Queue `a` for recomputation (dedup; faulty nodes never enqueue).
  void push(NodeId a);
  /// Drain the worklist: recompute each queued node, propagate changes
  /// to its neighbors until quiescence.
  void cascade();

  topo::Hypercube cube_;
  fault::FaultSet faults_;
  SafetyLevels levels_;
  std::vector<NodeId> worklist_;
  std::vector<std::uint8_t> queued_;  ///< worklist membership, by node
  std::vector<NodeId>* change_log_ = nullptr;
  Stats stats_;
  // Reusable scratch for apply()/retarget(): per-call O(N)-ish temporaries
  // (the symmetric-difference set and the addition/removal partitions)
  // would otherwise be reallocated on every sweep trial — at Q16+ that
  // allocator thrash dominates the cascades themselves. Behavior is
  // pinned unchanged by the oracle bit-identity tests and the checked-in
  // bench digests.
  fault::FaultSet delta_scratch_;
  std::vector<NodeId> additions_scratch_;
  std::vector<NodeId> removals_scratch_;
};

}  // namespace slcube::core
