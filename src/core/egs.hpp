// Section 4.1: safety levels in hypercubes with both faulty nodes and
// faulty links — algorithm EXTENDED_GLOBAL_STATUS (EGS).
//
// Healthy nodes split into N1 (no adjacent faulty link) and N2 (at least
// one adjacent faulty link). Two views coexist:
//   * public view — what every *other* node sees: N2 nodes declare
//     themselves faulty (level 0) and regular GS runs over N1 alone;
//   * self view — an N2 node considers itself healthy, treats the far end
//     of each adjacent faulty link as faulty, and runs NODE_STATUS once
//     in the last round. (Both ends of a faulty link are in N2 when
//     healthy, so every such far end already shows public level 0 and the
//     self view reduces to NODE_STATUS over public neighbor levels.)
//
// Routing (route_unicast_egs) is the Section-3 algorithm driven by the
// public view, with the paper's footnote-3 rule: a node that others treat
// as faulty can still be a *destination* — when the navigation vector has
// a single bit left, the only preferred neighbor IS the destination and
// the message is delivered across the connecting link if that link is
// healthy. The source uses its self view for condition C1; if the
// destination is the far end of one of the source's own faulty links the
// optimal conditions are forced off (the paper's "except for the end
// node(s) of adjacent faulty link(s)" caveat) and C3 may still produce an
// H + 2 route around the dead link.
#pragma once

#include "core/safety.hpp"
#include "core/unicast.hpp"
#include "fault/link_fault_set.hpp"

namespace slcube::core {

struct EgsResult {
  /// Level of each node as seen by other nodes (N2 and faulty => 0).
  SafetyLevels public_view;
  /// Level each node uses for itself (differs from public_view only on
  /// N2 nodes).
  SafetyLevels self_view;
  /// in_n2[a] — healthy node a has at least one adjacent faulty link.
  std::vector<bool> in_n2;
  /// Rounds the N1 fixed point needed (the paper's n-1 bound applies).
  unsigned rounds_to_stabilize = 0;
};

[[nodiscard]] EgsResult run_egs(const topo::Hypercube& cube,
                                const fault::FaultSet& faults,
                                const fault::LinkFaultSet& link_faults);

/// Borrowed pair of EGS level tables. The routing entry points take this
/// instead of a concrete owner so a from-scratch EgsResult and an
/// incremental core::EgsOracle (egs_oracle.hpp) drive the identical
/// algorithm — both referents must outlive the call.
struct EgsViews {
  const SafetyLevels& public_view;
  const SafetyLevels& self_view;
};

/// Source feasibility in the two-view model (C1 on the self view, C2/C3
/// on neighbors' public levels, with the faulty-link-destination caveat).
[[nodiscard]] SourceDecision decide_at_source_egs(
    const topo::Hypercube& cube, const fault::LinkFaultSet& link_faults,
    EgsViews views, NodeId s, NodeId d);

[[nodiscard]] inline SourceDecision decide_at_source_egs(
    const topo::Hypercube& cube, const fault::LinkFaultSet& link_faults,
    const EgsResult& egs, NodeId s, NodeId d) {
  return decide_at_source_egs(cube, link_faults,
                              EgsViews{egs.public_view, egs.self_view}, s, d);
}

/// Route one unicast under node + link faults. Endpoints must be healthy
/// nodes (N2 membership is fine — that is the point of Section 4.1).
/// With UnicastOptions::trace set, the route emits the same event chain
/// as route_unicast, with the SourceDecisionEvent carrying the two-view
/// context (egs / self_level / dest_link_faulty) the auditor checks.
[[nodiscard]] RouteResult route_unicast_egs(
    const topo::Hypercube& cube, const fault::FaultSet& faults,
    const fault::LinkFaultSet& link_faults, EgsViews views, NodeId s,
    NodeId d, const UnicastOptions& options = {});

[[nodiscard]] inline RouteResult route_unicast_egs(
    const topo::Hypercube& cube, const fault::FaultSet& faults,
    const fault::LinkFaultSet& link_faults, const EgsResult& egs, NodeId s,
    NodeId d, const UnicastOptions& options = {}) {
  return route_unicast_egs(cube, faults, link_faults,
                           EgsViews{egs.public_view, egs.self_view}, s, d,
                           options);
}

}  // namespace slcube::core
