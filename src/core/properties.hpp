// Executable statements of the paper's properties and theorems. Tests
// assert these over exhaustive/randomized fault sets; benches report how
// often and how tightly they hold. Each checker returns a counterexample
// description (empty string == holds) so failures are diagnosable.
#pragma once

#include <string>
#include <vector>

#include "core/safe_node.hpp"
#include "core/safety.hpp"
#include "topology/generalized_hypercube.hpp"

namespace slcube::core {

/// Theorem 2: a node with level k has a Hamming-distance path to every
/// healthy node within k (verified against BFS ground truth over healthy
/// nodes). O(N^2) — intended for dimensions <= 8.
[[nodiscard]] std::string check_theorem2(const topo::Hypercube& cube,
                                         const fault::FaultSet& faults,
                                         const SafetyLevels& levels);

/// Theorem 2': the generalized-hypercube analogue.
[[nodiscard]] std::string check_theorem2_gh(
    const topo::GeneralizedHypercube& gh, const fault::FaultSet& faults,
    const SafetyLevels& levels);

/// Property 1 + Corollary: every node with final level k != n stabilizes
/// by round k of GS, and every node stabilizes by round n-1.
[[nodiscard]] std::string check_property1(const topo::Hypercube& cube,
                                          const fault::FaultSet& faults);

/// Property 2: with fewer than n faults, every healthy unsafe node has a
/// safe neighbor. Precondition: faults.count() < n.
[[nodiscard]] std::string check_property2(const topo::Hypercube& cube,
                                          const fault::FaultSet& faults,
                                          const SafetyLevels& levels);

/// Section 2.3 containment: LH-safe ⊆ WF-safe ⊆ {level-n nodes}.
[[nodiscard]] std::string check_safe_set_containment(
    const topo::Hypercube& cube, const fault::FaultSet& faults);

/// Theorem 4: if the healthy subgraph is disconnected, the LH and WF safe
/// sets are empty. (Caller need not pre-check disconnection; a connected
/// cube passes vacuously.)
[[nodiscard]] std::string check_theorem4(const topo::Hypercube& cube,
                                         const fault::FaultSet& faults);

/// Round at which each healthy node's GS level last changed (0 = never
/// changed from the initial value). Used by check_property1 and Fig. 2.
[[nodiscard]] std::vector<unsigned> gs_stabilization_rounds(
    const topo::Hypercube& cube, const fault::FaultSet& faults);

}  // namespace slcube::core
