#include "core/egs.hpp"
#include "obs/profiler.hpp"

#include <algorithm>
#include <array>

#include "core/global_status.hpp"

namespace slcube::core {

EgsResult run_egs(const topo::Hypercube& cube, const fault::FaultSet& faults,
                  const fault::LinkFaultSet& link_faults) {
  const unsigned n = cube.dimension();
  EgsResult result;
  result.in_n2.assign(static_cast<std::size_t>(cube.num_nodes()), false);

  // Pseudo-fault set for the N1 fixed point: actual faults plus every
  // healthy node with an adjacent faulty link (N2), which self-declares 0.
  fault::FaultSet pseudo = faults;
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_healthy(a) && link_faults.touches(a)) {
      result.in_n2[a] = true;
      pseudo.mark_faulty(a);
    }
  }

  const GsResult gs = run_gs(cube, pseudo);
  result.public_view = gs.levels;
  result.rounds_to_stabilize = gs.rounds_to_stabilize;

  // Last round: each N2 node runs NODE_STATUS once on its own view. Far
  // ends of its faulty links are forced to 0 explicitly, though they are
  // already 0 in the public view (a healthy far end is itself in N2).
  result.self_view = result.public_view;
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (!result.in_n2[a]) continue;
    std::array<Level, topo::Hypercube::kMaxDimension> seq{};
    for (Dim d = 0; d < n; ++d) {
      seq[d] = link_faults.is_faulty(a, d)
                   ? Level{0}
                   : result.public_view[cube.neighbor(a, d)];
    }
    std::sort(seq.begin(), seq.begin() + n);
    result.self_view[a] = node_status(std::span<const Level>(seq.data(), n),
                                      n);
  }
  return result;
}

SourceDecision decide_at_source_egs(const topo::Hypercube& cube,
                                    const fault::LinkFaultSet& link_faults,
                                    EgsViews views, NodeId s, NodeId d) {
  SourceDecision dec;
  const std::uint32_t nav = cube.navigation_vector(s, d);
  dec.hamming = bits::popcount(nav);
  if (dec.hamming == 0) {
    dec.c1 = true;
    return dec;
  }
  // The self-view guarantee explicitly excludes the far ends of the
  // source's own faulty links; those must be reached the long way round.
  dec.dest_link_faulty =
      dec.hamming == 1 && link_faults.is_faulty(s, bits::lowest_set(nav));
  dec.c1 = !dec.dest_link_faulty && views.self_view[s] >= dec.hamming;
  cube.for_each_preferred(s, nav, [&](Dim dim, NodeId b) {
    if (link_faults.is_faulty(s, dim)) return;
    dec.c2 |= views.public_view[b] + 1u >= dec.hamming;
  });
  cube.for_each_spare(s, nav, [&](Dim dim, NodeId b) {
    if (link_faults.is_faulty(s, dim)) return;
    dec.c3 |= views.public_view[b] >= dec.hamming + 1u;
  });
  return dec;
}

namespace {

/// Trace helpers — only reached when a sink is attached. Same event
/// chain as route_unicast, plus the EGS two-view decision context.
void emit_source_egs(obs::TraceSink* trace, const SourceDecision& dec,
                     Level self_level, NodeId s, NodeId d, int chosen_dim,
                     unsigned ties, bool spare) {
  obs::SourceDecisionEvent ev;
  ev.source = s;
  ev.dest = d;
  ev.hamming = dec.hamming;
  ev.c1 = dec.c1;
  ev.c2 = dec.c2;
  ev.c3 = dec.c3;
  ev.chosen_dim = chosen_dim;
  ev.ties = ties;
  ev.spare = spare;
  ev.egs = true;
  ev.self_level = self_level;
  ev.dest_link_faulty = dec.dest_link_faulty;
  trace->on_event(ev);
}

void emit_done_egs(obs::TraceSink* trace, NodeId s, NodeId d,
                   RouteStatus status, unsigned hops) {
  obs::RouteDoneEvent ev;
  ev.source = s;
  ev.dest = d;
  ev.status = to_string(status);
  ev.hops = hops;
  trace->on_event(ev);
}

void emit_hop_egs(obs::TraceSink* trace, NodeId from, NodeId to, Dim dim,
                  Level level, std::uint32_t nav_before,
                  std::uint32_t nav_after, bool preferred, unsigned ties) {
  obs::HopEvent ev;
  ev.from = from;
  ev.to = to;
  ev.dim = dim;
  ev.level = level;
  ev.nav_before = nav_before;
  ev.nav_after = nav_after;
  ev.preferred = preferred;
  ev.ties = ties;
  trace->on_event(ev);
}

}  // namespace

RouteResult route_unicast_egs(const topo::Hypercube& cube,
                              const fault::FaultSet& faults,
                              const fault::LinkFaultSet& link_faults,
                              EgsViews views, NodeId s, NodeId d,
                              const UnicastOptions& options) {
  const obs::StageScope stage("route.egs");
  SLC_EXPECT_MSG(faults.is_healthy(s), "unicast source must be healthy");
  SLC_EXPECT_MSG(faults.is_healthy(d), "unicast destination must be healthy");

  obs::TraceSink* const trace = options.trace;
  const Level self_level = views.self_view[s];
  RouteResult result;
  result.decision = decide_at_source_egs(cube, link_faults, views, s, d);
  result.path.push_back(s);

  std::uint32_t nav = cube.navigation_vector(s, d);
  if (nav == 0) {
    result.status = RouteStatus::kDeliveredOptimal;
    if (trace != nullptr) {
      emit_source_egs(trace, result.decision, self_level, s, d, -1, 0, false);
      emit_done_egs(trace, s, d, result.status, 0);
    }
    return result;
  }

  NodeId cur = s;
  bool suboptimal = false;
  // As in route_unicast, the source event is emitted lazily at the first
  // hop so the chosen dimension is known and the untraced path stays
  // branch-identical (kRandom's RNG sequence is never perturbed).
  bool source_emitted = false;
  if (!result.decision.optimal_feasible()) {
    if (!result.decision.c3) {
      result.status = RouteStatus::kSourceRefused;
      if (trace != nullptr) {
        emit_source_egs(trace, result.decision, self_level, s, d, -1, 0,
                        false);
        emit_done_egs(trace, s, d, result.status, 0);
      }
      return result;
    }
    // Spare levels >= H + 1 >= 2 imply the spare is in N1, and a faulty
    // link to it would have put it in N2 (public 0), so no link check is
    // needed beyond the one in choose_spare's level threshold.
    unsigned ties = 0;
    const auto spare =
        choose_spare(cube, views.public_view, cur, nav, options,
                     trace != nullptr ? &ties : nullptr);
    SLC_ASSERT_MSG(spare.has_value(), "C3 held but no spare qualified");
    SLC_ASSERT(!link_faults.is_faulty(cur, *spare));
    const NodeId detour = cube.neighbor(cur, *spare);
    if (trace != nullptr) {
      emit_source_egs(trace, result.decision, self_level, s, d,
                      static_cast<int>(*spare), ties, true);
      source_emitted = true;
      emit_hop_egs(trace, cur, detour, *spare, views.public_view[detour],
                   nav, nav | bits::unit(*spare), false, ties);
    }
    cur = detour;
    nav |= bits::unit(*spare);
    result.path.push_back(cur);
    suboptimal = true;
  }

  // The untraced loop is kept free of tracing bookkeeping — it is the
  // throughput-critical path of the link-fault sweeps.
  if (trace == nullptr) {
    while (nav != 0) {
      if (bits::popcount(nav) == 1) {
        // Final hop: the only preferred neighbor is the destination,
        // which may be an N2 node everyone else treats as faulty
        // (footnote 3) — deliver across the link if it is healthy.
        const Dim dim = bits::lowest_set(nav);
        if (link_faults.is_faulty(cur, dim)) {
          result.status = RouteStatus::kStuck;
          return result;
        }
        cur = cube.neighbor(cur, dim);
        nav = 0;
        result.path.push_back(cur);
        break;
      }
      const auto next =
          choose_preferred(cube, views.public_view, cur, nav, options);
      if (!next || link_faults.is_faulty(cur, *next)) {
        result.status = RouteStatus::kStuck;
        return result;
      }
      cur = cube.neighbor(cur, *next);
      nav &= ~bits::unit(*next);
      result.path.push_back(cur);
    }
  } else {
    while (nav != 0) {
      if (bits::popcount(nav) == 1) {
        const Dim dim = bits::lowest_set(nav);
        if (link_faults.is_faulty(cur, dim)) {
          result.status = RouteStatus::kStuck;
          if (!source_emitted) {
            emit_source_egs(trace, result.decision, self_level, s, d, -1, 0,
                            false);
          }
          emit_done_egs(trace, s, d, result.status, result.hops());
          return result;
        }
        const NodeId to = cube.neighbor(cur, dim);
        if (!source_emitted) {
          emit_source_egs(trace, result.decision, self_level, s, d,
                          static_cast<int>(dim), 1, false);
          source_emitted = true;
        }
        // The destination's public level may legitimately be 0 (an N2
        // node); remaining distance is 0, so the Theorem-2 floor holds.
        emit_hop_egs(trace, cur, to, dim, views.public_view[to], nav, 0,
                     true, 1);
        cur = to;
        nav = 0;
        result.path.push_back(cur);
        break;
      }
      unsigned ties = 0;
      const auto next =
          choose_preferred(cube, views.public_view, cur, nav, options, &ties);
      if (!next || link_faults.is_faulty(cur, *next)) {
        result.status = RouteStatus::kStuck;
        if (!source_emitted) {
          emit_source_egs(trace, result.decision, self_level, s, d, -1, 0,
                          false);
        }
        emit_done_egs(trace, s, d, result.status, result.hops());
        return result;
      }
      const NodeId to = cube.neighbor(cur, *next);
      if (!source_emitted) {
        emit_source_egs(trace, result.decision, self_level, s, d,
                        static_cast<int>(*next), ties, false);
        source_emitted = true;
      }
      emit_hop_egs(trace, cur, to, *next, views.public_view[to], nav,
                   nav & ~bits::unit(*next), true, ties);
      cur = to;
      nav &= ~bits::unit(*next);
      result.path.push_back(cur);
    }
  }

  SLC_ASSERT(cur == d);
  result.status = suboptimal ? RouteStatus::kDeliveredSuboptimal
                             : RouteStatus::kDeliveredOptimal;
  if (trace != nullptr) {
    emit_done_egs(trace, s, d, result.status, result.hops());
  }
  return result;
}

}  // namespace slcube::core
