#include "core/egs.hpp"

#include <algorithm>
#include <array>

#include "core/global_status.hpp"

namespace slcube::core {

EgsResult run_egs(const topo::Hypercube& cube, const fault::FaultSet& faults,
                  const fault::LinkFaultSet& link_faults) {
  const unsigned n = cube.dimension();
  EgsResult result;
  result.in_n2.assign(static_cast<std::size_t>(cube.num_nodes()), false);

  // Pseudo-fault set for the N1 fixed point: actual faults plus every
  // healthy node with an adjacent faulty link (N2), which self-declares 0.
  fault::FaultSet pseudo = faults;
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_healthy(a) && link_faults.touches(a)) {
      result.in_n2[a] = true;
      pseudo.mark_faulty(a);
    }
  }

  const GsResult gs = run_gs(cube, pseudo);
  result.public_view = gs.levels;
  result.rounds_to_stabilize = gs.rounds_to_stabilize;

  // Last round: each N2 node runs NODE_STATUS once on its own view. Far
  // ends of its faulty links are forced to 0 explicitly, though they are
  // already 0 in the public view (a healthy far end is itself in N2).
  result.self_view = result.public_view;
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (!result.in_n2[a]) continue;
    std::array<Level, topo::Hypercube::kMaxDimension> seq{};
    for (Dim d = 0; d < n; ++d) {
      seq[d] = link_faults.is_faulty(a, d)
                   ? Level{0}
                   : result.public_view[cube.neighbor(a, d)];
    }
    std::sort(seq.begin(), seq.begin() + n);
    result.self_view[a] = node_status(std::span<const Level>(seq.data(), n),
                                      n);
  }
  return result;
}

SourceDecision decide_at_source_egs(const topo::Hypercube& cube,
                                    const fault::LinkFaultSet& link_faults,
                                    const EgsResult& egs, NodeId s, NodeId d) {
  SourceDecision dec;
  const std::uint32_t nav = cube.navigation_vector(s, d);
  dec.hamming = bits::popcount(nav);
  if (dec.hamming == 0) {
    dec.c1 = true;
    return dec;
  }
  // The self-view guarantee explicitly excludes the far ends of the
  // source's own faulty links; those must be reached the long way round.
  const bool dest_across_dead_link =
      dec.hamming == 1 && link_faults.is_faulty(s, bits::lowest_set(nav));
  dec.c1 = !dest_across_dead_link && egs.self_view[s] >= dec.hamming;
  cube.for_each_preferred(s, nav, [&](Dim dim, NodeId b) {
    if (link_faults.is_faulty(s, dim)) return;
    dec.c2 |= egs.public_view[b] + 1u >= dec.hamming;
  });
  cube.for_each_spare(s, nav, [&](Dim dim, NodeId b) {
    if (link_faults.is_faulty(s, dim)) return;
    dec.c3 |= egs.public_view[b] >= dec.hamming + 1u;
  });
  return dec;
}

RouteResult route_unicast_egs(const topo::Hypercube& cube,
                              const fault::FaultSet& faults,
                              const fault::LinkFaultSet& link_faults,
                              const EgsResult& egs, NodeId s, NodeId d,
                              const UnicastOptions& options) {
  SLC_EXPECT_MSG(faults.is_healthy(s), "unicast source must be healthy");
  SLC_EXPECT_MSG(faults.is_healthy(d), "unicast destination must be healthy");

  RouteResult result;
  result.decision = decide_at_source_egs(cube, link_faults, egs, s, d);
  result.path.push_back(s);

  std::uint32_t nav = cube.navigation_vector(s, d);
  if (nav == 0) {
    result.status = RouteStatus::kDeliveredOptimal;
    return result;
  }

  NodeId cur = s;
  bool suboptimal = false;
  if (!result.decision.optimal_feasible()) {
    if (!result.decision.c3) {
      result.status = RouteStatus::kSourceRefused;
      return result;
    }
    // Spare levels >= H + 1 >= 2 imply the spare is in N1, and a faulty
    // link to it would have put it in N2 (public 0), so no link check is
    // needed beyond the one in choose_spare's level threshold.
    const auto spare = choose_spare(cube, egs.public_view, cur, nav, options);
    SLC_ASSERT_MSG(spare.has_value(), "C3 held but no spare qualified");
    SLC_ASSERT(!link_faults.is_faulty(cur, *spare));
    cur = cube.neighbor(cur, *spare);
    nav |= bits::unit(*spare);
    result.path.push_back(cur);
    suboptimal = true;
  }

  while (nav != 0) {
    if (bits::popcount(nav) == 1) {
      // Final hop: the only preferred neighbor is the destination, which
      // may be an N2 node everyone else treats as faulty (footnote 3) —
      // deliver across the connecting link if that link is healthy.
      const Dim dim = bits::lowest_set(nav);
      if (link_faults.is_faulty(cur, dim)) {
        result.status = RouteStatus::kStuck;
        return result;
      }
      cur = cube.neighbor(cur, dim);
      nav = 0;
      result.path.push_back(cur);
      break;
    }
    const auto next = choose_preferred(cube, egs.public_view, cur, nav,
                                       options);
    if (!next || link_faults.is_faulty(cur, *next)) {
      result.status = RouteStatus::kStuck;
      return result;
    }
    cur = cube.neighbor(cur, *next);
    nav &= ~bits::unit(*next);
    result.path.push_back(cur);
  }

  SLC_ASSERT(cur == d);
  result.status = suboptimal ? RouteStatus::kDeliveredSuboptimal
                             : RouteStatus::kDeliveredOptimal;
  return result;
}

}  // namespace slcube::core
