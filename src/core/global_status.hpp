// Algorithm GLOBAL_STATUS (GS) — the paper's synchronous iterative
// computation of safety levels.
//
// Initially every nonfaulty node is n-safe and every faulty node 0-safe
// (so a fault-free cube needs no work at all). Each round, every healthy
// node recomputes NODE_STATUS from its neighbors' previous-round levels.
// The Corollary to Property 1 guarantees stabilization within n-1 rounds
// for every fault distribution, including disconnected cubes.
//
// This is the centralized "oracle" execution used by the routing code and
// the experiment harness; src/sim runs the same protocol message-by-
// message over the discrete-event simulator, and tests assert the two
// agree bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "core/safety.hpp"

namespace slcube::core {

struct GsResult {
  SafetyLevels levels;
  /// Rounds after which no level changed anymore. 0 means the initial
  /// assignment was already stable (e.g. fault-free cube). This is the
  /// quantity Fig. 2 plots.
  unsigned rounds_to_stabilize = 0;
  /// changes_per_round[r] = number of nodes whose level changed in round
  /// r+1. Empty trailing rounds are not stored.
  std::vector<std::uint64_t> changes_per_round;
  /// True iff a quiescent round was reached (always true when
  /// GsOptions::max_rounds == 0).
  bool stabilized = false;
};

struct GsOptions {
  /// Upper bound on rounds (the paper's D). 0 means "run to quiescence"
  /// (a round with no changes), which Property 1 bounds by n-1 changing
  /// rounds for the paper's optimistic start. A finite cap below the
  /// stabilization point deliberately yields *unstabilized* levels, used
  /// by robustness experiments; GsResult::stabilized reports which case
  /// occurred.
  unsigned max_rounds = 0;
  /// Start every healthy node at this level instead of n (the paper's
  /// choice). The all-0 "pessimistic" start is an ablation (DESIGN.md
  /// choice #2); GS converges to the same unique fixed point from above
  /// (n-start) — the 0-start needs the stabilization loop to keep
  /// running while levels *rise*, which plain GS also handles.
  bool pessimistic_start = false;
  /// Worker threads for the synchronous rounds: 1 = the classic serial
  /// loop, 0 = one per hardware thread, k = exactly k. Every round is a
  /// pure function of the previous round's snapshot and a barrier ends
  /// it, so the fixed point — and rounds_to_stabilize/changes_per_round —
  /// are bit-identical at every thread count (test_packed_levels pins
  /// {1,4,8}). Node ranges are split on packed-word boundaries so no two
  /// workers ever write the same 64-bit word.
  unsigned threads = 1;
};

/// Run GS to stabilization (or the round cap).
[[nodiscard]] GsResult run_gs(const topo::Hypercube& cube,
                              const fault::FaultSet& faults,
                              const GsOptions& options = {});

/// Convenience: just the stabilized levels. `threads` as in
/// GsOptions::threads — the mega-cube scratch-build entry point.
[[nodiscard]] SafetyLevels compute_safety_levels(const topo::Hypercube& cube,
                                                 const fault::FaultSet& faults,
                                                 unsigned threads = 1);

}  // namespace slcube::core
