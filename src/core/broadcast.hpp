// EXTENSION — safety-level-guided broadcasting.
//
// Safety levels were originally introduced for *broadcasting* (J. Wu,
// "Safety Level — An Efficient Mechanism for Achieving Reliable
// Broadcasting in Hypercubes," IEEE TC 44(5), 1995 — reference [9] of the
// unicasting paper). This module reconstructs that application on top of
// our level machinery so the repository covers the concept's original
// use case as well.
//
// Scheme (spanning-binomial-tree with level-guided dimension ordering):
// a node responsible for the dimension set D sends along the dimensions
// of D one by one; the child reached along the i-th dimension sent
// becomes responsible for the dimensions not yet sent (|D| - i of them).
// Because the earlier a dimension is sent the larger the child's subtree,
// we order D so the child with the highest safety level gets the largest
// subtree. A faulty child's subtree would be lost, so each healthy node
// of that subtree is instead *patched in* with a safety-level unicast
// from the current sender (subtrees partition the cube, so patching never
// duplicates a delivery).
//
// On a fault-free cube this reduces to the classic binomial broadcast —
// exactly 2^n - 1 messages, full coverage, which tests assert. Under
// faults, coverage and message overhead are measured empirically by
// bench_broadcast; nodes whose patch unicast is refused are counted as
// missed.
#pragma once

#include <cstdint>
#include <vector>

#include "core/safety.hpp"

namespace slcube::core {

struct BroadcastResult {
  /// reached[a] — node a received the message (source counts as reached).
  std::vector<bool> reached;
  /// Total point-to-point messages sent (== reached count - 1 when no
  /// retries were wasted on faulty children... faulty children cost no
  /// message: the sender skips them using its local neighbor knowledge).
  std::uint64_t messages = 0;
  /// Healthy nodes NOT reached.
  std::uint64_t missed = 0;

  [[nodiscard]] std::uint64_t reached_count() const {
    std::uint64_t c = 0;
    for (const bool r : reached) c += r ? 1u : 0u;
    return c;
  }
};

/// Broadcast from healthy `source` using level-guided subtree assignment.
[[nodiscard]] BroadcastResult broadcast(const topo::Hypercube& cube,
                                        const fault::FaultSet& faults,
                                        const SafetyLevels& levels,
                                        NodeId source);

}  // namespace slcube::core
