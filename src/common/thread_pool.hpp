// A small work-stealing-free thread pool plus a blocked-range parallel_for,
// used by the experiment sweep driver. Experiments are embarrassingly
// parallel (independent trials), so static chunking is enough; per-chunk
// state (RNG forks, stat accumulators) keeps results deterministic and
// independent of thread count (Core Guidelines CP.2: avoid data races by
// design, not by locks on the hot path).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace slcube {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task. Tasks must not throw; a throwing task aborts.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run body(chunk_index, begin, end) over [0, n) split into roughly equal
/// chunks, one chunk per pool thread (or serially if the pool has a single
/// thread). `body` must be safe to call concurrently on disjoint ranges.
void parallel_for_chunks(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// parallel_for_chunks with every chunk boundary rounded down to a
/// multiple of `align` (the last chunk absorbs the remainder). Bulk
/// writers over bit-packed arrays need this: two chunks must never share
/// a storage word, so ranges are split on word boundaries only. Chunk
/// geometry is a pure function of (n, align, pool.size()) — deterministic
/// consumers may fold per-chunk results in chunk order.
void parallel_for_aligned(
    ThreadPool& pool, std::size_t n, std::size_t align,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Process-wide default pool (lazily constructed, sized to the hardware).
ThreadPool& default_pool();

}  // namespace slcube
