// Bit-manipulation helpers used throughout the hypercube code.
//
// A node address in an n-cube is the n-bit binary integer a_{n-1}..a_0;
// dimension i corresponds to bit i (the paper's "ith bit / ith dimension").
// Everything here is constexpr and branch-light (Core Guidelines Per.11,
// Per.14: computation at compile time, no allocation).
#pragma once

#include <bit>
#include <cstdint>

#include "common/contracts.hpp"

namespace slcube {

/// Node identifier. 32 bits supports cubes up to dimension 31, far above
/// anything the paper (or any physical hypercube machine) used.
using NodeId = std::uint32_t;

/// A dimension index 0..n-1.
using Dim = std::uint32_t;

namespace bits {

/// Number of set bits — the Hamming weight |a|.
[[nodiscard]] constexpr unsigned popcount(std::uint32_t v) noexcept {
  return static_cast<unsigned>(std::popcount(v));
}

/// 64-bit Hamming weight, for word-at-a-time scans over node bitsets
/// (a Q20 cube has 2^20 nodes = 2^14 words; per-node popcounts on a
/// 32-bit view would silently truncate past dimension 31).
[[nodiscard]] constexpr unsigned popcount64(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::popcount(v));
}

/// Iterate the set bits of a 64-bit word low-to-high, calling f(index).
/// The word-scan workhorse for FaultSet-sized bitsets; the 32-bit
/// for_each_set below stays the navigation-vector entry point.
template <typename F>
constexpr void for_each_set64(std::uint64_t mask, F&& f) {
  while (mask != 0) {
    f(static_cast<unsigned>(std::countr_zero(mask)));
    mask &= mask - 1;  // clear lowest set bit
  }
}

/// Hamming distance H(a, b) between two addresses (the paper's H(s, d)).
[[nodiscard]] constexpr unsigned hamming(NodeId a, NodeId b) noexcept {
  return popcount(a ^ b);
}

/// The unit vector e^k of the paper: a word with only bit k set.
[[nodiscard]] constexpr std::uint32_t unit(Dim k) noexcept {
  return std::uint32_t{1} << k;
}

/// Flip bit `k` of `a` — the paper's a ⊕ e^k, i.e. the neighbor of `a`
/// along dimension k.
[[nodiscard]] constexpr NodeId flip(NodeId a, Dim k) noexcept {
  return a ^ unit(k);
}

/// Test bit `k` of `a`.
[[nodiscard]] constexpr bool test(std::uint32_t a, Dim k) noexcept {
  return (a >> k) & 1u;
}

/// Index of the lowest set bit. Precondition: v != 0.
[[nodiscard]] constexpr Dim lowest_set(std::uint32_t v) noexcept {
  return static_cast<Dim>(std::countr_zero(v));
}

/// Index of the highest set bit. Precondition: v != 0.
[[nodiscard]] constexpr Dim highest_set(std::uint32_t v) noexcept {
  return 31u - static_cast<Dim>(std::countl_zero(v));
}

/// Mask with the low `n` bits set (n <= 32).
[[nodiscard]] constexpr std::uint32_t low_mask(unsigned n) noexcept {
  return n >= 32 ? ~std::uint32_t{0} : (std::uint32_t{1} << n) - 1u;
}

/// Iterate the set bits of `mask` low-to-high, calling f(dim).
/// Used to enumerate preferred dimensions of a navigation vector.
template <typename F>
constexpr void for_each_set(std::uint32_t mask, F&& f) {
  while (mask != 0) {
    const Dim d = lowest_set(mask);
    f(d);
    mask &= mask - 1;  // clear lowest set bit
  }
}

/// Iterate the *clear* bits of `mask` among the low `n` bits, low-to-high.
/// Used to enumerate spare dimensions.
template <typename F>
constexpr void for_each_clear(std::uint32_t mask, unsigned n, F&& f) {
  for_each_set(~mask & low_mask(n), static_cast<F&&>(f));
}

}  // namespace bits
}  // namespace slcube
