#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/contracts.hpp"

namespace slcube {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)),
      columns_(std::move(columns)),
      precision_(columns_.size(), 3) {
  SLC_EXPECT(!columns_.empty());
}

void Table::set_precision(std::size_t col, int digits) {
  SLC_EXPECT(col < columns_.size());
  SLC_EXPECT(digits >= 0 && digits <= 12);
  precision_[col] = digits;
}

void Table::add_row(std::vector<Cell> row) {
  SLC_EXPECT_MSG(row.size() == columns_.size(),
                 "row width must match column count");
  rows_.push_back(std::move(row));
}

std::string Table::format_cell(const Cell& c, std::size_t col) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_[col]) << std::get<double>(c);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    width[c] = columns_[c].size();

  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      line.push_back(format_cell(row[c], c));
      width[c] = std::max(width[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }

  if (!title_.empty()) os << "## " << title_ << '\n';
  auto hrule = [&] {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& line) {
    for (std::size_t c = 0; c < line.size(); ++c) {
      os << "| " << std::setw(static_cast<int>(width[c])) << line[c] << ' ';
    }
    os << "|\n";
  };
  hrule();
  emit(columns_);
  hrule();
  for (const auto& line : cells) emit(line);
  hrule();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(columns_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(format_cell(row[c], c));
    }
    os << '\n';
  }
}

}  // namespace slcube
