#include "common/format.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/contracts.hpp"

namespace slcube {

std::string to_bits(std::uint32_t value, unsigned n) {
  SLC_EXPECT(n >= 1 && n <= 32);
  std::string s(n, '0');
  for (unsigned i = 0; i < n; ++i) {
    if ((value >> i) & 1u) s[n - 1 - i] = '1';
  }
  return s;
}

std::uint32_t from_bits(const std::string& bits) {
  SLC_EXPECT(!bits.empty() && bits.size() <= 32);
  std::uint32_t v = 0;
  for (char c : bits) {
    SLC_EXPECT_MSG(c == '0' || c == '1', "bit string must be 0/1");
    v = (v << 1) | static_cast<std::uint32_t>(c - '0');
  }
  return v;
}

std::string to_digits(const std::vector<std::uint32_t>& coords) {
  const bool compact =
      std::all_of(coords.begin(), coords.end(), [](auto c) { return c < 10; });
  std::ostringstream os;
  // coords[0] is dimension 0 (least significant); print MSB-first like the
  // paper's "(a_{n-1}, ..., a_0)".
  for (auto it = coords.rbegin(); it != coords.rend(); ++it) {
    if (!compact && it != coords.rbegin()) os << '.';
    os << *it;
  }
  return os.str();
}

std::string percent(double fraction, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace slcube
