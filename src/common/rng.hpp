// Deterministic pseudo-random number generation for reproducible
// experiments. Two generators:
//
//   SplitMix64   — used only to expand a user seed into generator state.
//   Xoshiro256ss — xoshiro256** 1.0 (Blackman & Vigna), the workhorse.
//
// Both are tiny, allocation-free value types (Core Guidelines Per.14/16);
// Xoshiro256ss satisfies std::uniform_random_bit_generator so it can feed
// <random> distributions, though the helpers below avoid <random>'s
// implementation-defined distributions so results are bit-identical across
// standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/contracts.hpp"

namespace slcube {

/// SplitMix64: a 64-bit mixer with full-period state increment. Good enough
/// on its own for non-critical uses; here it seeds Xoshiro256ss.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0. Period 2^256 - 1; passes BigCrush.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256ss(std::uint64_t seed = 0xd1b54a32d192ed03ull)
      noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) by Lemire's multiply-shift rejection.
  /// Precondition: bound > 0.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    SLC_EXPECT(bound > 0);
    // Rejection-free fast path is fine for our bounds (<= 2^32); use the
    // debiased multiply method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    SLC_EXPECT(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) noexcept { return uniform01() < p; }

  /// Derive an independent child generator (for parallel sweeps: one child
  /// per trial keeps results independent of scheduling).
  constexpr Xoshiro256ss fork() noexcept { return Xoshiro256ss((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

/// Fisher–Yates shuffle with our deterministic generator.
template <typename T>
void shuffle(std::vector<T>& v, Xoshiro256ss& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.below(i));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

/// Sample `k` distinct values from [0, population) without replacement.
/// Uses Floyd's algorithm when k is small relative to the population, and
/// a shuffle of the full range otherwise.
std::vector<std::uint64_t> sample_without_replacement(std::uint64_t population,
                                                      std::uint64_t k,
                                                      Xoshiro256ss& rng);

}  // namespace slcube
