#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace slcube {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  SLC_EXPECT(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    SLC_EXPECT_MSG(!stop_, "submit after shutdown");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // noexcept by contract; a throw terminates (intended)
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_chunks(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, pool.size()));
  if (chunks == 1) {
    body(0, 0, n);
    return;
  }
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    pool.submit([&body, c, begin, end] { body(c, begin, end); });
    begin = end;
  }
  pool.wait_idle();
}

void parallel_for_aligned(
    ThreadPool& pool, std::size_t n, std::size_t align,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  SLC_EXPECT(align > 0);
  if (n == 0) return;
  const std::size_t units = (n + align - 1) / align;  // whole align-blocks
  const std::size_t chunks =
      std::min(units, std::max<std::size_t>(1, pool.size()));
  if (chunks == 1) {
    body(0, 0, n);
    return;
  }
  const std::size_t base = units / chunks;
  const std::size_t extra = units % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = (base + (c < extra ? 1 : 0)) * align;
    const std::size_t end = std::min(n, begin + len);
    pool.submit([&body, c, begin, end] { body(c, begin, end); });
    begin = end;
  }
  pool.wait_idle();
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace slcube
