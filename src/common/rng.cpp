#include "common/rng.hpp"

#include <algorithm>
#include <unordered_set>

namespace slcube {

std::vector<std::uint64_t> sample_without_replacement(std::uint64_t population,
                                                      std::uint64_t k,
                                                      Xoshiro256ss& rng) {
  SLC_EXPECT(k <= population);
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  if (k == 0) return out;

  // Dense case: shuffle a full index vector. Avoids the hash set when we
  // would hit many collisions anyway.
  if (population <= 4 * k) {
    std::vector<std::uint64_t> all(static_cast<std::size_t>(population));
    for (std::uint64_t i = 0; i < population; ++i)
      all[static_cast<std::size_t>(i)] = i;
    shuffle(all, rng);
    out.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k));
    return out;
  }

  // Sparse case: Floyd's algorithm — k iterations, no rejection loop.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(k) * 2);
  for (std::uint64_t j = population - k; j < population; ++j) {
    const std::uint64_t t = rng.below(j + 1);
    const std::uint64_t pick = seen.contains(t) ? j : t;
    seen.insert(pick);
    out.push_back(pick);
  }
  return out;
}

}  // namespace slcube
