// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").
//
// SLC_EXPECT  — precondition on a public API; always checked.
// SLC_ENSURE  — postcondition; always checked.
// SLC_ASSERT  — internal invariant; checked unless NDEBUG *and*
//               SLCUBE_CHEAP_ASSERTS is defined (benchmark builds keep
//               asserts on by default: this library is a research artifact
//               and silent corruption is worse than a few branches).
//
// Violations print the condition, file:line and an optional message, then
// call std::abort(): contract violations are programming errors, not
// recoverable conditions, so no exception is thrown.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace slcube::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* cond,
                                          const char* file, int line,
                                          const char* msg) noexcept {
  std::fprintf(stderr, "slcube: %s violated: (%s) at %s:%d%s%s\n", kind, cond,
               file, line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace slcube::detail

#define SLC_CONTRACT_IMPL(kind, cond, msg)                                  \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::slcube::detail::contract_failure(kind, #cond, __FILE__, __LINE__,   \
                                         msg);                              \
    }                                                                       \
  } while (false)

#define SLC_EXPECT(cond) SLC_CONTRACT_IMPL("precondition", cond, nullptr)
#define SLC_EXPECT_MSG(cond, msg) SLC_CONTRACT_IMPL("precondition", cond, msg)
#define SLC_ENSURE(cond) SLC_CONTRACT_IMPL("postcondition", cond, nullptr)
#define SLC_ENSURE_MSG(cond, msg) SLC_CONTRACT_IMPL("postcondition", cond, msg)

#if defined(NDEBUG) && defined(SLCUBE_CHEAP_ASSERTS)
#define SLC_ASSERT(cond) ((void)0)
#define SLC_ASSERT_MSG(cond, msg) ((void)0)
#else
#define SLC_ASSERT(cond) SLC_CONTRACT_IMPL("invariant", cond, nullptr)
#define SLC_ASSERT_MSG(cond, msg) SLC_CONTRACT_IMPL("invariant", cond, msg)
#endif

#define SLC_UNREACHABLE(msg)                                                \
  ::slcube::detail::contract_failure("unreachable", "false", __FILE__,      \
                                     __LINE__, msg)
