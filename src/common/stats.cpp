#include "common/stats.hpp"

#include <sstream>

namespace slcube {

std::size_t IntHistogram::quantile(double q) const noexcept {
  SLC_EXPECT(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    cum += bins_[i];
    if (cum >= target) return i;
  }
  return max_value();
}

std::string IntHistogram::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    if (!first) os << ' ';
    os << i << ':' << bins_[i];
    first = false;
  }
  return os.str();
}

}  // namespace slcube
