#include "common/stats.hpp"

#include <algorithm>
#include <sstream>

namespace slcube {

std::size_t IntHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  // Clamp rather than trap: callers feed computed fractions (ratios of
  // counts, CLI input) where rounding can land just outside [0, 1], and
  // NaN must not select a bin by accident. !(q > 0) catches NaN too.
  if (!(q > 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Target mass of at least one observation: quantile(0) is the minimum
  // *observed* value, never an empty leading bin.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    cum += bins_[i];
    if (cum >= target) return i;
  }
  return max_value();
}

std::string IntHistogram::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    if (!first) os << ' ';
    os << i << ':' << bins_[i];
    first = false;
  }
  return os.str();
}

}  // namespace slcube
