// Result presentation for the benchmark harness: a column-typed table that
// renders aligned ASCII to stdout (the "same rows the paper reports") and
// can also emit CSV for downstream plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

namespace slcube {

/// One cell: text, integer, or a double with per-column precision.
using Cell = std::variant<std::string, std::int64_t, double>;

class Table {
 public:
  /// `title` is printed above the table; `columns` are header labels.
  Table(std::string title, std::vector<std::string> columns);

  /// Set decimal places used for double cells of column `col` (default 3).
  void set_precision(std::size_t col, int digits);

  /// Append a row; must have exactly as many cells as there are columns.
  void add_row(std::vector<Cell> row);

  /// Convenience: start a row builder.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& t) : table_(t) {}
    // Overloads construct the variant alternative in place; funneling
    // through a by-value Cell trips a GCC 12 -Wmaybe-uninitialized false
    // positive at every call site under -O2.
    RowBuilder& operator<<(std::string s) {
      cells_.emplace_back(std::in_place_type<std::string>, std::move(s));
      return *this;
    }
    RowBuilder& operator<<(const char* s) {
      cells_.emplace_back(std::in_place_type<std::string>, s);
      return *this;
    }
    RowBuilder& operator<<(double v) {
      cells_.emplace_back(std::in_place_type<double>, v);
      return *this;
    }
    template <typename T,
              std::enable_if_t<std::is_integral_v<T>, int> = 0>
    RowBuilder& operator<<(T v) {
      cells_.emplace_back(std::in_place_type<std::int64_t>,
                          static_cast<std::int64_t>(v));
      return *this;
    }
    ~RowBuilder() { table_.add_row(std::move(cells_)); }
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table& table_;
    std::vector<Cell> cells_;
  };
  RowBuilder row() { return RowBuilder(*this); }

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const noexcept {
    return columns_.size();
  }

  /// Render the aligned ASCII table.
  void print(std::ostream& os) const;

  /// Emit RFC-4180-ish CSV (quotes only when needed).
  void write_csv(std::ostream& os) const;

 private:
  [[nodiscard]] std::string format_cell(const Cell& c, std::size_t col) const;

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<int> precision_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace slcube
