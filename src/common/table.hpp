// Result presentation for the benchmark harness: a column-typed table that
// renders aligned ASCII to stdout (the "same rows the paper reports") and
// can also emit CSV for downstream plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace slcube {

/// One cell: text, integer, or a double with per-column precision.
using Cell = std::variant<std::string, std::int64_t, double>;

class Table {
 public:
  /// `title` is printed above the table; `columns` are header labels.
  Table(std::string title, std::vector<std::string> columns);

  /// Set decimal places used for double cells of column `col` (default 3).
  void set_precision(std::size_t col, int digits);

  /// Append a row; must have exactly as many cells as there are columns.
  void add_row(std::vector<Cell> row);

  /// Convenience: start a row builder.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& t) : table_(t) {}
    RowBuilder& operator<<(Cell c) {
      cells_.push_back(std::move(c));
      return *this;
    }
    ~RowBuilder() { table_.add_row(std::move(cells_)); }
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table& table_;
    std::vector<Cell> cells_;
  };
  RowBuilder row() { return RowBuilder(*this); }

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const noexcept {
    return columns_.size();
  }

  /// Render the aligned ASCII table.
  void print(std::ostream& os) const;

  /// Emit RFC-4180-ish CSV (quotes only when needed).
  void write_csv(std::ostream& os) const;

 private:
  [[nodiscard]] std::string format_cell(const Cell& c, std::size_t col) const;

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<int> precision_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace slcube
