// String formatting helpers shared by examples, tests and benches:
// binary node addresses (the paper writes nodes as bit strings like 0101),
// mixed-radix addresses for generalized hypercubes, and percentage strings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace slcube {

/// Node address as an `n`-character bit string, MSB (dimension n-1) first —
/// exactly the paper's notation, e.g. to_bits(5, 4) == "0101".
[[nodiscard]] std::string to_bits(std::uint32_t value, unsigned n);

/// Parse an MSB-first bit string back to an integer; the inverse of
/// to_bits. Precondition: only '0'/'1' characters.
[[nodiscard]] std::uint32_t from_bits(const std::string& bits);

/// Mixed-radix coordinates as a digit string MSB-first, e.g. "021" for a
/// 2x3x2 generalized hypercube node. Radices must each be <= 10 for the
/// compact form; wider radices are rendered dot-separated ("3.12.0").
[[nodiscard]] std::string to_digits(const std::vector<std::uint32_t>& coords);

/// "12.34%" style percent string.
[[nodiscard]] std::string percent(double fraction, int digits = 2);

}  // namespace slcube
