// Streaming statistics used by the experiment harness: Welford running
// moments, ratio counters, and integer histograms. All value types, no
// allocation on the hot path except histogram growth.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/contracts.hpp"

namespace slcube {

/// Welford online mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  void merge(const RunningStat& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += o.m2_ + delta * delta * na * nb / nt;
    n_ += o.n_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Success/total ratio counter with exact integer bookkeeping.
class Ratio {
 public:
  void add(bool hit) noexcept {
    ++total_;
    hits_ += hit ? 1u : 0u;
  }
  void merge(const Ratio& o) noexcept {
    hits_ += o.hits_;
    total_ += o.total_;
  }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double value() const noexcept {
    return total_ ? static_cast<double>(hits_) / static_cast<double>(total_)
                  : 0.0;
  }
  [[nodiscard]] double percent() const noexcept { return 100.0 * value(); }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t total_ = 0;
};

/// Histogram over small non-negative integers (path lengths, rounds, ...).
/// Bins grow on demand; out-of-range is impossible by construction.
class IntHistogram {
 public:
  void add(std::size_t value, std::uint64_t weight = 1) {
    if (value >= bins_.size()) bins_.resize(value + 1, 0);
    bins_[value] += weight;
    total_ += weight;
  }

  void merge(const IntHistogram& o) {
    if (o.bins_.size() > bins_.size()) bins_.resize(o.bins_.size(), 0);
    for (std::size_t i = 0; i < o.bins_.size(); ++i) bins_[i] += o.bins_[i];
    total_ += o.total_;
  }

  [[nodiscard]] std::uint64_t count(std::size_t value) const noexcept {
    return value < bins_.size() ? bins_[value] : 0;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t max_value() const noexcept {
    return bins_.empty() ? 0 : bins_.size() - 1;
  }

  [[nodiscard]] double mean() const noexcept {
    if (total_ == 0) return 0.0;
    double s = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i)
      s += static_cast<double>(i) * static_cast<double>(bins_[i]);
    return s / static_cast<double>(total_);
  }

  /// Smallest value v with cumulative mass >= max(1, ceil(q * total)).
  /// Total order of defined edges: an empty histogram yields 0; q is
  /// clamped into [0, 1] (NaN clamps to 0); quantile(0) is the minimum
  /// observed value and quantile(1) the maximum.
  [[nodiscard]] std::size_t quantile(double q) const noexcept;

  /// Render as "v:count v:count ..." for logs.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace slcube
