#include "baselines/sidetrack.hpp"

#include <array>

namespace slcube::baselines {

routing::RouteAttempt SidetrackRouter::route(NodeId s, NodeId d) {
  SLC_EXPECT(faults_ != nullptr);
  const unsigned n = cube_.dimension();
  routing::RouteAttempt attempt;
  attempt.walk.push_back(s);
  NodeId cur = s;
  const unsigned ttl = ttl_factor_ * n + cube_.distance(s, d);

  for (unsigned hop = 0; cur != d && hop < ttl; ++hop) {
    const std::uint32_t nav = cube_.navigation_vector(cur, d);
    std::array<Dim, topo::Hypercube::kMaxDimension> healthy_preferred{};
    std::size_t np = 0;
    cube_.for_each_preferred(cur, nav, [&](Dim dim, NodeId b) {
      if (faults_->is_healthy(b)) healthy_preferred[np++] = dim;
    });
    Dim chosen;
    if (np > 0) {
      chosen = healthy_preferred[rng_.below(np)];
    } else {
      // Sidetrack: any healthy neighbor, chosen uniformly.
      std::array<Dim, topo::Hypercube::kMaxDimension> healthy_any{};
      std::size_t na = 0;
      cube_.for_each_neighbor(cur, [&](Dim dim, NodeId b) {
        if (faults_->is_healthy(b)) healthy_any[na++] = dim;
      });
      if (na == 0) return attempt;  // totally surrounded: stuck
      chosen = healthy_any[rng_.below(na)];
    }
    cur = cube_.neighbor(cur, chosen);
    attempt.walk.push_back(cur);
  }
  attempt.delivered = cur == d;
  return attempt;
}

}  // namespace slcube::baselines
