#include "baselines/dfs_backtrack.hpp"

#include <vector>

namespace slcube::baselines {

routing::RouteAttempt DfsBacktrackRouter::route(NodeId s, NodeId d) {
  SLC_EXPECT(faults_ != nullptr);
  SLC_EXPECT(visited_epoch_.size() ==
             static_cast<std::size_t>(cube_.num_nodes()));
  routing::RouteAttempt attempt;
  attempt.walk.push_back(s);
  // visited == the history carried in the message. Stamping a node with
  // the current epoch marks it; bumping the epoch retires the previous
  // route's whole set in O(1), so no O(N) clear or allocation per route.
  ++epoch_;
  const std::uint64_t epoch = epoch_;
  const auto visited = [&](NodeId a) { return visited_epoch_[a] == epoch; };
  visited_epoch_[s] = epoch;
  stack_.clear();
  stack_.push_back(s);  // current forward path

  while (!stack_.empty()) {
    const NodeId cur = stack_.back();
    if (cur == d) {
      attempt.delivered = true;
      return attempt;
    }
    // Forward move: unvisited healthy neighbor, preferred dims first.
    const std::uint32_t nav = cube_.navigation_vector(cur, d);
    NodeId next = cur;
    bool found = false;
    auto consider = [&](Dim, NodeId b) {
      if (found || visited(b) || faults_->is_faulty(b)) return;
      next = b;
      found = true;
    };
    cube_.for_each_preferred(cur, nav, consider);
    if (!found) cube_.for_each_spare(cur, nav, consider);
    if (found) {
      visited_epoch_[next] = epoch;
      stack_.push_back(next);
      attempt.walk.push_back(next);
    } else {
      // Dead end: physically backtrack over the incoming link.
      stack_.pop_back();
      if (!stack_.empty()) attempt.walk.push_back(stack_.back());
    }
  }
  return attempt;  // component exhausted: d unreachable
}

}  // namespace slcube::baselines
