#include "baselines/dfs_backtrack.hpp"

#include <vector>

namespace slcube::baselines {

routing::RouteAttempt DfsBacktrackRouter::route(NodeId s, NodeId d) {
  SLC_EXPECT(faults_ != nullptr);
  routing::RouteAttempt attempt;
  attempt.walk.push_back(s);
  // visited == the history carried in the message.
  std::vector<bool> visited(static_cast<std::size_t>(cube_.num_nodes()),
                            false);
  visited[s] = true;
  std::vector<NodeId> stack{s};  // current forward path

  while (!stack.empty()) {
    const NodeId cur = stack.back();
    if (cur == d) {
      attempt.delivered = true;
      return attempt;
    }
    // Forward move: unvisited healthy neighbor, preferred dims first.
    const std::uint32_t nav = cube_.navigation_vector(cur, d);
    NodeId next = cur;
    bool found = false;
    auto consider = [&](Dim, NodeId b) {
      if (found || visited[b] || faults_->is_faulty(b)) return;
      next = b;
      found = true;
    };
    cube_.for_each_preferred(cur, nav, consider);
    if (!found) cube_.for_each_spare(cur, nav, consider);
    if (found) {
      visited[next] = true;
      stack.push_back(next);
      attempt.walk.push_back(next);
    } else {
      // Dead end: physically backtrack over the incoming link.
      stack.pop_back();
      if (!stack.empty()) attempt.walk.push_back(stack.back());
    }
  }
  return attempt;  // component exhausted: d unreachable
}

}  // namespace slcube::baselines
