// Safe-node routing in the style of Lee & Hayes (reference [7]).
//
// Reconstruction note: the original paper gives a full communication
// scheme; what we implement here is the core routing discipline implied
// by Definition 2 and the bound the unicasting paper quotes ("a path of
// length no longer than two plus the Hamming distance ... as long as the
// hypercube is not fully unsafe"):
//
//   * A Definition-2 safe node has at most ONE unsafe-or-faulty neighbor,
//     so from a safe node with H >= 2 a *safe preferred* neighbor always
//     exists — the message rides a chain of safe nodes, and the final hop
//     (H == 1) goes straight to the (healthy) destination.
//   * An unsafe source first moves onto the safe chain: a safe preferred
//     neighbor keeps the route optimal; otherwise a safe spare neighbor
//     costs the +2 detour.
//   * A source with no safe node in its closed neighborhood refuses —
//     which by Theorem 4 of the unicasting paper is *always* the case in
//     a disconnected hypercube, the inapplicability this repository's
//     disconnection benches quantify.
#pragma once

#include "core/safe_node.hpp"
#include "routing/router.hpp"

namespace slcube::baselines {

class LeeHayesRouter final : public routing::Router {
 public:
  [[nodiscard]] std::string_view name() const override { return "lee-hayes"; }

  void prepare(const topo::Hypercube& cube,
               const fault::FaultSet& faults) override {
    cube_ = cube;
    faults_ = &faults;
    safe_ = core::compute_safe_nodes(cube, faults,
                                     core::SafeNodeRule::kLeeHayes);
  }

  [[nodiscard]] unsigned prepare_rounds() const override {
    return safe_.rounds_to_stabilize;
  }

  [[nodiscard]] routing::RouteAttempt route(NodeId s, NodeId d) override;

 private:
  topo::Hypercube cube_{1};
  const fault::FaultSet* faults_ = nullptr;
  core::SafeNodeResult safe_;
};

}  // namespace slcube::baselines
