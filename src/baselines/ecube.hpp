// E-cube (dimension-order) routing — the fault-oblivious baseline.
// Corrects the set bits of s ⊕ d in ascending dimension order; the first
// faulty hop kills the message. Its delivery curve is the floor every
// fault-tolerant scheme must beat.
#pragma once

#include "routing/router.hpp"

namespace slcube::baselines {

class EcubeRouter final : public routing::Router {
 public:
  [[nodiscard]] std::string_view name() const override { return "e-cube"; }

  void prepare(const topo::Hypercube& cube,
               const fault::FaultSet& faults) override {
    cube_ = cube;
    faults_ = &faults;
  }

  [[nodiscard]] routing::RouteAttempt route(NodeId s, NodeId d) override;

 private:
  topo::Hypercube cube_{1};
  const fault::FaultSet* faults_ = nullptr;
};

}  // namespace slcube::baselines
