// Depth-first-search routing with backtracking — Chen & Shin (reference
// [3]): the message carries the history of visited nodes; at each node it
// moves to an unvisited healthy neighbor, trying the preferred dimensions
// first (lowest dimension on ties), and physically backtracks over the
// incoming link when no forward move exists. Complete: the message
// reaches the destination whenever source and destination are in the same
// healthy component, at the cost of an unbounded walk and of carrying the
// visited set in the message (the overhead the paper's introduction
// criticizes). Never refuses — in a disconnected cube it exhausts the
// whole component before giving up, and the walk records that traffic.
#pragma once

#include "routing/router.hpp"

namespace slcube::baselines {

class DfsBacktrackRouter final : public routing::Router {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "dfs-backtrack";
  }

  void prepare(const topo::Hypercube& cube,
               const fault::FaultSet& faults) override {
    cube_ = cube;
    faults_ = &faults;
  }

  [[nodiscard]] routing::RouteAttempt route(NodeId s, NodeId d) override;

 private:
  topo::Hypercube cube_{1};
  const fault::FaultSet* faults_ = nullptr;
};

}  // namespace slcube::baselines
