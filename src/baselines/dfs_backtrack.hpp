// Depth-first-search routing with backtracking — Chen & Shin (reference
// [3]): the message carries the history of visited nodes; at each node it
// moves to an unvisited healthy neighbor, trying the preferred dimensions
// first (lowest dimension on ties), and physically backtracks over the
// incoming link when no forward move exists. Complete: the message
// reaches the destination whenever source and destination are in the same
// healthy component, at the cost of an unbounded walk and of carrying the
// visited set in the message (the overhead the paper's introduction
// criticizes). Never refuses — in a disconnected cube it exhausts the
// whole component before giving up, and the walk records that traffic.
#pragma once

#include "routing/router.hpp"

namespace slcube::baselines {

class DfsBacktrackRouter final : public routing::Router {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "dfs-backtrack";
  }

  void prepare(const topo::Hypercube& cube,
               const fault::FaultSet& faults) override {
    cube_ = cube;
    faults_ = &faults;
    // Size the visited arena once per configuration; routes reuse it via
    // epoch stamping instead of allocating (and zeroing) an O(N) vector
    // per call — the difference between routing and thrashing at Q16+.
    visited_epoch_.assign(static_cast<std::size_t>(cube.num_nodes()), 0);
    epoch_ = 0;
  }

  [[nodiscard]] routing::RouteAttempt route(NodeId s, NodeId d) override;

 private:
  topo::Hypercube cube_{1};
  const fault::FaultSet* faults_ = nullptr;
  /// visited(a) in the current route <=> visited_epoch_[a] == epoch_.
  /// The epoch bump at route entry retires the whole set in O(1); the
  /// u64 stamp never wraps in any realizable run.
  std::vector<std::uint64_t> visited_epoch_;
  std::uint64_t epoch_ = 0;
  std::vector<NodeId> stack_;  ///< forward-path arena, reused per route
};

}  // namespace slcube::baselines
