#include "baselines/ecube.hpp"

namespace slcube::baselines {

routing::RouteAttempt EcubeRouter::route(NodeId s, NodeId d) {
  SLC_EXPECT(faults_ != nullptr);
  routing::RouteAttempt attempt;
  attempt.walk.push_back(s);
  NodeId cur = s;
  std::uint32_t nav = cube_.navigation_vector(s, d);
  while (nav != 0) {
    const Dim dim = bits::lowest_set(nav);
    const NodeId next = cube_.neighbor(cur, dim);
    if (faults_->is_faulty(next)) return attempt;  // stuck, undelivered
    cur = next;
    nav &= ~bits::unit(dim);
    attempt.walk.push_back(cur);
  }
  attempt.delivered = true;
  return attempt;
}

}  // namespace slcube::baselines
