#include "baselines/chiu_wu.hpp"

#include <optional>

namespace slcube::baselines {

void ChiuWuRouter::safe_chain(NodeId cur, NodeId d,
                              routing::RouteAttempt& attempt) {
  SLC_ASSERT(safe_.safe[cur]);
  for (;;) {
    const unsigned h = cube_.distance(cur, d);
    if (h == 0) {
      attempt.delivered = true;
      return;
    }
    if (h == 1) {
      attempt.walk.push_back(d);
      attempt.delivered = true;
      return;
    }
    const std::uint32_t nav = cube_.navigation_vector(cur, d);
    std::optional<NodeId> safe_pref;
    std::optional<NodeId> healthy_pref;
    cube_.for_each_preferred(cur, nav, [&](Dim, NodeId b) {
      if (!safe_pref && safe_.safe[b]) safe_pref = b;
      if (!healthy_pref && faults_->is_healthy(b)) healthy_pref = b;
    });
    if (safe_pref) {
      cur = *safe_pref;
    } else {
      // Only reachable at h == 2 (a WF-safe node with h >= 3 always has a
      // safe preferred neighbor); a healthy preferred neighbor exists
      // because a WF-safe node has at most one faulty neighbor, and the
      // next iteration delivers directly from it (h == 1).
      SLC_ASSERT(h == 2 && healthy_pref.has_value());
      cur = *healthy_pref;
    }
    attempt.walk.push_back(cur);
  }
}

routing::RouteAttempt ChiuWuRouter::route(NodeId s, NodeId d) {
  SLC_EXPECT(faults_ != nullptr);
  routing::RouteAttempt attempt;
  attempt.walk.push_back(s);
  if (s == d) {
    attempt.delivered = true;
    return attempt;
  }
  if (cube_.distance(s, d) == 1) {  // adjacent destination: deliver directly
    attempt.walk.push_back(d);
    attempt.delivered = true;
    return attempt;
  }
  if (safe_.safe[s]) {
    safe_chain(s, d, attempt);
    return attempt;
  }

  // One hop onto the chain: safe preferred first (keeps the route
  // optimal), then safe spare (+2).
  const std::uint32_t nav = cube_.navigation_vector(s, d);
  std::optional<NodeId> entry;
  cube_.for_each_preferred(s, nav, [&](Dim, NodeId b) {
    if (!entry && safe_.safe[b]) entry = b;
  });
  if (!entry) {
    cube_.for_each_spare(s, nav, [&](Dim, NodeId b) {
      if (!entry && safe_.safe[b]) entry = b;
    });
  }
  if (entry) {
    attempt.walk.push_back(*entry);
    safe_chain(*entry, d, attempt);
    return attempt;
  }

  // Two hops onto the chain (the +4 worst case): a healthy neighbor x
  // with a WF-safe neighbor y; among the candidates take the pair whose
  // chain start is closest to the destination.
  std::optional<std::pair<NodeId, NodeId>> best;
  unsigned best_dist = 0;
  cube_.for_each_neighbor(s, [&](Dim, NodeId x) {
    if (faults_->is_faulty(x)) return;
    cube_.for_each_neighbor(x, [&](Dim, NodeId y) {
      if (y == s || !safe_.safe[y]) return;
      const unsigned dist = cube_.distance(y, d);
      if (!best || dist < best_dist) {
        best = {x, y};
        best_dist = dist;
      }
    });
  });
  if (best) {
    attempt.walk.push_back(best->first);
    attempt.walk.push_back(best->second);
    safe_chain(best->second, d, attempt);
    return attempt;
  }

  attempt.refused = true;  // no WF-safe node within two healthy hops
  return attempt;
}

}  // namespace slcube::baselines
