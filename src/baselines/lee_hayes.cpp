#include "baselines/lee_hayes.hpp"

#include <optional>

namespace slcube::baselines {

routing::RouteAttempt LeeHayesRouter::route(NodeId s, NodeId d) {
  SLC_EXPECT(faults_ != nullptr);
  routing::RouteAttempt attempt;
  attempt.walk.push_back(s);
  NodeId cur = s;

  auto hop = [&](NodeId next) {
    cur = next;
    attempt.walk.push_back(next);
  };
  auto find_safe = [&](bool preferred) -> std::optional<NodeId> {
    const std::uint32_t nav = cube_.navigation_vector(cur, d);
    std::optional<NodeId> found;
    auto consider = [&](Dim, NodeId b) {
      if (!found && safe_.safe[b]) found = b;
    };
    if (preferred) {
      cube_.for_each_preferred(cur, nav, consider);
    } else {
      cube_.for_each_spare(cur, nav, consider);
    }
    return found;
  };

  for (;;) {
    const unsigned h = cube_.distance(cur, d);
    if (h == 0) {
      attempt.delivered = true;
      return attempt;
    }
    if (h == 1) {  // final hop straight to the (healthy) destination
      hop(d);
      attempt.delivered = true;
      return attempt;
    }
    if (const auto next = find_safe(/*preferred=*/true)) {
      hop(*next);
      continue;
    }
    // A safe node with H >= 2 always has a safe preferred neighbor
    // (Definition 2 leaves it at most one unsafe-or-faulty neighbor), so
    // reaching this point means cur is unsafe — only possible at the
    // source, before the message enters the safe chain.
    SLC_ASSERT(cur == s && !safe_.safe[s]);
    if (const auto next = find_safe(/*preferred=*/false)) {
      hop(*next);  // +2 detour onto the chain
      continue;
    }
    attempt.refused = true;  // no safe node in the closed neighborhood
    return attempt;
  }
}

}  // namespace slcube::baselines
