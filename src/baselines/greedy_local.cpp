#include "baselines/greedy_local.hpp"

namespace slcube::baselines {

routing::RouteAttempt GreedyLocalRouter::route(NodeId s, NodeId d) {
  SLC_EXPECT(faults_ != nullptr);
  routing::RouteAttempt attempt;
  attempt.walk.push_back(s);
  NodeId cur = s;
  std::uint32_t nav = cube_.navigation_vector(s, d);
  while (nav != 0) {
    bool moved = false;
    bits::for_each_set(nav, [&](Dim dim) {
      if (moved) return;
      const NodeId next = cube_.neighbor(cur, dim);
      if (faults_->is_faulty(next)) return;
      cur = next;
      nav &= ~bits::unit(dim);
      attempt.walk.push_back(cur);
      moved = true;
    });
    if (!moved) return attempt;  // all preferred neighbors faulty: stuck
  }
  attempt.delivered = true;
  return attempt;
}

}  // namespace slcube::baselines
