// The paper's algorithm behind the common Router interface, so the
// comparison harness can drive it side by side with the baselines.
#pragma once

#include <optional>

#include "core/global_status.hpp"
#include "core/unicast.hpp"
#include "routing/router.hpp"

namespace slcube::baselines {

class SafetyLevelRouter final : public routing::Router {
 public:
  explicit SafetyLevelRouter(core::UnicastOptions options = {})
      : options_(options) {}

  /// Variant with the random tie-break ablation (owns its generator, so
  /// the instance is safely movable — the pointer into it is formed per
  /// route() call, never stored).
  static SafetyLevelRouter with_random_tie_break(std::uint64_t seed) {
    SafetyLevelRouter r;
    r.own_rng_ = Xoshiro256ss(seed);
    return r;
  }

  [[nodiscard]] std::string_view name() const override {
    return "safety-level";
  }

  void prepare(const topo::Hypercube& cube,
               const fault::FaultSet& faults) override {
    cube_ = cube;
    faults_ = &faults;
    gs_ = core::run_gs(cube, faults);
  }

  [[nodiscard]] unsigned prepare_rounds() const override {
    return gs_.rounds_to_stabilize;
  }

  [[nodiscard]] routing::RouteAttempt route(NodeId s, NodeId d) override {
    SLC_EXPECT(faults_ != nullptr);
    core::UnicastOptions options = options_;
    if (own_rng_) {
      options.tie_break = core::TieBreak::kRandom;
      options.rng = &*own_rng_;
    }
    const core::RouteResult r =
        core::route_unicast(cube_, *faults_, gs_.levels, s, d, options);
    routing::RouteAttempt attempt;
    attempt.delivered = r.delivered();
    attempt.refused = r.status == core::RouteStatus::kSourceRefused;
    attempt.walk = r.path;
    return attempt;
  }

  [[nodiscard]] const core::SafetyLevels& levels() const noexcept {
    return gs_.levels;
  }

 private:
  topo::Hypercube cube_{1};
  const fault::FaultSet* faults_ = nullptr;
  core::GsResult gs_;
  core::UnicastOptions options_;
  std::optional<Xoshiro256ss> own_rng_;
};

}  // namespace slcube::baselines
