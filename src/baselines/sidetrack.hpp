// Random sidetracking — Gordon & Stout's scheme (reference [5] of the
// paper, as characterized in its introduction): forward to a randomly
// chosen healthy *preferred* neighbor; when none exists, "sidetrack" to a
// randomly chosen healthy neighbor of any kind and keep going. The walk
// is memoryless, so livelock is possible; a TTL of `ttl_factor * n + H`
// hops bounds each attempt (the original analyzes expected behavior on
// random fault patterns rather than giving a worst-case bound — the TTL
// is our documented choice).
#pragma once

#include "common/rng.hpp"
#include "routing/router.hpp"

namespace slcube::baselines {

class SidetrackRouter final : public routing::Router {
 public:
  explicit SidetrackRouter(std::uint64_t seed, unsigned ttl_factor = 4)
      : rng_(seed), ttl_factor_(ttl_factor) {}

  [[nodiscard]] std::string_view name() const override { return "sidetrack"; }

  void prepare(const topo::Hypercube& cube,
               const fault::FaultSet& faults) override {
    cube_ = cube;
    faults_ = &faults;
  }

  [[nodiscard]] routing::RouteAttempt route(NodeId s, NodeId d) override;

 private:
  topo::Hypercube cube_{1};
  const fault::FaultSet* faults_ = nullptr;
  Xoshiro256ss rng_;
  unsigned ttl_factor_;
};

}  // namespace slcube::baselines
