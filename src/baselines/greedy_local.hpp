// Greedy progressive routing on purely local information — the flavor of
// Chen & Shin's adaptive progressive scheme (reference [2]): at every
// node take any healthy preferred neighbor (lowest dimension first);
// never detour, never backtrack. Dies the moment all preferred neighbors
// are faulty, so it shows what neighbor-status-only information buys over
// e-cube, and what the safety-level information buys over it.
#pragma once

#include "routing/router.hpp"

namespace slcube::baselines {

class GreedyLocalRouter final : public routing::Router {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "greedy-local";
  }

  void prepare(const topo::Hypercube& cube,
               const fault::FaultSet& faults) override {
    cube_ = cube;
    faults_ = &faults;
  }

  [[nodiscard]] routing::RouteAttempt route(NodeId s, NodeId d) override;

 private:
  topo::Hypercube cube_{1};
  const fault::FaultSet* faults_ = nullptr;
};

}  // namespace slcube::baselines
