// Routing on Wu–Fernandez extended safe nodes in the style of Chiu & Wu
// (reference [4]): guaranteed delivery with a path no longer than the
// Hamming distance plus FOUR, as long as the cube is not fully unsafe.
//
// Reconstruction note (the original gives a more elaborate scheme; this
// captures its information model and its bound):
//   * A Definition-3 (WF) safe node has at most one FAULTY neighbor and
//     at most two unsafe-or-faulty neighbors. Hence from a WF-safe node:
//     H >= 3 gives a safe preferred neighbor (<= 2 bad among >= 3
//     preferred); H == 2 gives at least a *healthy* preferred neighbor
//     (<= 1 faulty among 2); H <= 1 delivers directly. So a WF-safe
//     source reaches any healthy destination along an optimal path.
//   * An unsafe source walks at most two hops to reach a WF-safe node
//     (safe preferred -> +0, safe spare -> +2, a safe node two healthy
//     hops away -> up to +4), giving the H + 4 worst case the paper
//     quotes for this scheme.
//   * If no WF-safe node exists within two healthy hops the source
//     refuses; by Theorem 4 that always happens in disconnected cubes.
#pragma once

#include "core/safe_node.hpp"
#include "routing/router.hpp"

namespace slcube::baselines {

class ChiuWuRouter final : public routing::Router {
 public:
  [[nodiscard]] std::string_view name() const override { return "chiu-wu"; }

  void prepare(const topo::Hypercube& cube,
               const fault::FaultSet& faults) override {
    cube_ = cube;
    faults_ = &faults;
    safe_ = core::compute_safe_nodes(cube, faults,
                                     core::SafeNodeRule::kWuFernandez);
  }

  [[nodiscard]] unsigned prepare_rounds() const override {
    return safe_.rounds_to_stabilize;
  }

  [[nodiscard]] routing::RouteAttempt route(NodeId s, NodeId d) override;

 private:
  /// Ride the safe chain from `cur` (which must be WF-safe) to d,
  /// appending hops to `attempt`.
  void safe_chain(NodeId cur, NodeId d, routing::RouteAttempt& attempt);

  topo::Hypercube cube_{1};
  const fault::FaultSet* faults_ = nullptr;
  core::SafeNodeResult safe_;
};

}  // namespace slcube::baselines
